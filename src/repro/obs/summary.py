"""Reconstruct run statistics from a trace.

This is the proof that the trace is complete: everything the paper's
figures need — the Fig. 7a per-phase breakdown, the Fig. 9 stolen vs.
local task distribution, steal/migration tallies, per-PE busy time — is
recomputed here from events alone, with no access to the run objects.
The test suite asserts the reconstruction matches ``SimResult`` /
``PhaseTimes`` field-for-field.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import (
    EV_BATCH_FLUSH,
    EV_CACHE_EVICT,
    EV_CACHE_HIT,
    EV_CACHE_MISS,
    EV_POOL_DISPATCH,
    EV_QUERY_END,
    EV_QUERY_START,
    EV_REMOTE_ACCESS,
    EV_REQUEST_REJECTED,
    EV_REPARTITION_DECISION,
    EV_SHM_ATTACH,
    EV_SHM_PUBLISH,
    EV_STEAL_FAIL,
    EV_STEAL_REPLY,
    EV_STEAL_REQUEST,
    EV_STEAL_TRANSFER,
    EV_TASK_ABANDONED,
    EV_TASK_END,
    EV_TASK_RETRY,
    EV_TASK_START,
    EV_WORKER_DEATH,
    PHASE_NAMES,
    PHASE_SERVE,
    SPAN_BEGIN,
    SPAN_END,
    Event,
)

__all__ = ["TraceSummary", "summarize_events", "format_summary"]


@dataclass
class TraceSummary:
    """Aggregates recomputed purely from a trace."""

    #: span name -> total duration (sum over begin/end pairs).
    phases: "dict[str, float]" = field(default_factory=dict)
    num_events: int = 0
    #: highest timestamp seen.
    end_time: float = 0.0
    # -- task execution ----------------------------------------------------
    tasks_executed: int = 0
    per_pe_tasks: "dict[int, int]" = field(default_factory=dict)
    per_pe_stolen_tasks: "dict[int, int]" = field(default_factory=dict)
    #: per-PE sum of executed task costs (busy time).
    per_pe_busy: "dict[int, float]" = field(default_factory=dict)
    # -- work stealing -----------------------------------------------------
    steal_requests: int = 0
    steal_transfers: int = 0
    steal_fails: int = 0
    tasks_migrated: int = 0
    per_pe_steal_requests: "dict[int, int]" = field(default_factory=dict)
    # -- fault tolerance ---------------------------------------------------
    task_retries: int = 0
    tasks_abandoned: int = 0
    worker_deaths: int = 0
    #: retry reason -> count (e.g. "fault", "timeout", "worker_death").
    retry_reasons: "dict[str, int]" = field(default_factory=dict)
    abandoned_tasks: "list[int]" = field(default_factory=list)
    # -- query serving -----------------------------------------------------
    queries_executed: int = 0
    queries_solved: int = 0
    #: queries given up on under the ``"degrade"`` policy.
    queries_abandoned: int = 0
    #: per-query latencies in seconds, in completion order (abandoned
    #: queries excluded — they never produced an answer).
    query_latencies: "list[float]" = field(default_factory=list)
    # -- service (cache + coalescer) ---------------------------------------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    batches_flushed: int = 0
    #: coalesced batch sizes, in flush order.
    batch_sizes: "list[int]" = field(default_factory=list)
    #: flush reason ("full", "linger", "drain") -> count.
    flush_reasons: "dict[str, int]" = field(default_factory=dict)
    requests_rejected: int = 0
    # -- dispatch / data plane ---------------------------------------------
    pool_dispatches: int = 0
    chunks_issued: int = 0
    dispatch_tasks: int = 0
    #: parent→worker serialisation traffic (pickled context + chunk args).
    context_bytes: int = 0
    task_bytes: int = 0
    #: chunk policy label -> number of pool runs that used it.
    chunk_policies: "dict[str, int]" = field(default_factory=dict)
    shm_publishes: int = 0
    shm_publish_reused: int = 0
    shm_publish_bytes: int = 0
    shm_attaches: int = 0
    shm_attach_bytes: int = 0
    shm_attach_s: float = 0.0
    # -- other point events ------------------------------------------------
    remote_accesses: int = 0
    repartition_decisions: "list[dict]" = field(default_factory=list)

    @property
    def total_phase_time(self) -> float:
        """Sum of all phase durations."""
        return sum(self.phases.values())

    def queries_per_sec(self) -> float:
        """Serving throughput: executed queries over the ``serve`` span
        (falling back to the whole trace window when no span was emitted)."""
        window = self.phases.get(PHASE_SERVE) or self.end_time
        return self.queries_executed / window if window > 0 else 0.0

    def query_latency_percentile(self, q: float) -> float:
        """Nearest-rank latency percentile (``q`` in [0, 100])."""
        lats = sorted(self.query_latencies)
        if not lats:
            return 0.0
        i = min(int(q / 100 * (len(lats) - 1) + 0.5), len(lats) - 1)
        return lats[i]

    def cache_hit_rate(self) -> float:
        """Snapshot-cache hits over all lookups (0.0 with no traffic)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def mean_batch_size(self) -> float:
        """Average coalesced batch size (0.0 with no flushes)."""
        return (
            sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0
        )

    @property
    def total_busy(self) -> float:
        """Total busy time across all PEs."""
        return sum(self.per_pe_busy.values())

    def stolen_fraction(self) -> float:
        """Fraction of executed tasks that were stolen (Fig. 9 headline)."""
        stolen = sum(self.per_pe_stolen_tasks.values())
        return stolen / self.tasks_executed if self.tasks_executed else 0.0


def summarize_events(events: "list[Event]") -> TraceSummary:
    """Aggregate a trace; events may arrive in any order (sorted by ts)."""
    s = TraceSummary()
    s.num_events = len(events)
    # Stable sort by timestamp: emission order breaks ties, which is what
    # makes span pairing under the simulator's deterministic clock exact.
    open_spans: "dict[str, list[float]]" = {}
    for ev in sorted(events, key=lambda e: e.ts):
        s.end_time = max(s.end_time, ev.ts)
        if ev.kind == SPAN_BEGIN:
            open_spans.setdefault(ev.name, []).append(ev.ts)
        elif ev.kind == SPAN_END:
            stack = open_spans.get(ev.name)
            if not stack:
                raise ValueError(f"span_end without begin for {ev.name!r}")
            begin = stack.pop()
            s.phases[ev.name] = s.phases.get(ev.name, 0.0) + (ev.ts - begin)
        elif ev.name == EV_TASK_START:
            pass  # counted at task_end so half-open traces stay consistent
        elif ev.name == EV_TASK_END:
            s.tasks_executed += 1
            pe = ev.pe if ev.pe is not None else -1
            s.per_pe_tasks[pe] = s.per_pe_tasks.get(pe, 0) + 1
            s.per_pe_busy[pe] = s.per_pe_busy.get(pe, 0.0) + float(
                ev.attrs.get("cost", 0.0)
            )
            if ev.attrs.get("stolen"):
                s.per_pe_stolen_tasks[pe] = s.per_pe_stolen_tasks.get(pe, 0) + 1
        elif ev.name == EV_STEAL_REQUEST:
            s.steal_requests += 1
            pe = ev.pe if ev.pe is not None else -1
            s.per_pe_steal_requests[pe] = s.per_pe_steal_requests.get(pe, 0) + 1
        elif ev.name == EV_STEAL_TRANSFER:
            s.steal_transfers += 1
            s.tasks_migrated += int(ev.attrs.get("tasks", 0))
        elif ev.name == EV_STEAL_FAIL:
            s.steal_fails += 1
        elif ev.name == EV_STEAL_REPLY:
            pass  # request/transfer/fail already carry the tallies
        elif ev.name == EV_TASK_RETRY:
            s.task_retries += 1
            reason = str(ev.attrs.get("reason", "unknown"))
            s.retry_reasons[reason] = s.retry_reasons.get(reason, 0) + 1
        elif ev.name == EV_TASK_ABANDONED:
            s.tasks_abandoned += 1
            task = ev.attrs.get("task")
            if task is not None:
                s.abandoned_tasks.append(int(task))
        elif ev.name == EV_WORKER_DEATH:
            s.worker_deaths += 1
        elif ev.name == EV_QUERY_START:
            pass  # counted at query_end so half-open traces stay consistent
        elif ev.name == EV_QUERY_END:
            s.queries_executed += 1
            if ev.attrs.get("solved"):
                s.queries_solved += 1
            if ev.attrs.get("abandoned"):
                s.queries_abandoned += 1
            else:
                s.query_latencies.append(float(ev.attrs.get("latency", 0.0)))
        elif ev.name == EV_CACHE_HIT:
            s.cache_hits += 1
        elif ev.name == EV_CACHE_MISS:
            s.cache_misses += 1
        elif ev.name == EV_CACHE_EVICT:
            s.cache_evictions += 1
        elif ev.name == EV_BATCH_FLUSH:
            s.batches_flushed += 1
            s.batch_sizes.append(int(ev.attrs.get("size", 0)))
            reason = str(ev.attrs.get("reason", "unknown"))
            s.flush_reasons[reason] = s.flush_reasons.get(reason, 0) + 1
        elif ev.name == EV_REQUEST_REJECTED:
            s.requests_rejected += 1
        elif ev.name == EV_POOL_DISPATCH:
            s.pool_dispatches += 1
            s.chunks_issued += int(ev.attrs.get("chunks", 0))
            s.dispatch_tasks += int(ev.attrs.get("tasks", 0))
            s.context_bytes += int(ev.attrs.get("context_bytes", 0))
            s.task_bytes += int(ev.attrs.get("task_bytes", 0))
            policy = str(ev.attrs.get("policy", "unknown"))
            s.chunk_policies[policy] = s.chunk_policies.get(policy, 0) + 1
        elif ev.name == EV_SHM_PUBLISH:
            s.shm_publishes += 1
            s.shm_publish_bytes += int(ev.attrs.get("bytes", 0))
            if ev.attrs.get("reused"):
                s.shm_publish_reused += 1
        elif ev.name == EV_SHM_ATTACH:
            s.shm_attaches += 1
            s.shm_attach_bytes += int(ev.attrs.get("bytes", 0))
            s.shm_attach_s += float(ev.attrs.get("seconds", 0.0))
        elif ev.name == EV_REMOTE_ACCESS:
            s.remote_accesses += int(ev.attrs.get("count", 1))
        elif ev.name == EV_REPARTITION_DECISION:
            s.repartition_decisions.append(dict(ev.attrs))
    dangling = [name for name, stack in open_spans.items() if stack]
    if dangling:
        raise ValueError(f"unclosed span(s) in trace: {sorted(dangling)}")
    return s


def _percentile_rows(by_pe: "dict[int, int]", totals: "dict[int, int]") -> "list[list[str]]":
    """Fig. 9-style rows: stolen vs non-stolen at percentiles of stolen count."""
    pes = sorted(totals)
    if not pes:
        return []
    order = sorted(pes, key=lambda p: -by_pe.get(p, 0))
    rows = []
    for q in (0, 25, 50, 75, 100):
        i = min(int(q / 100 * (len(order) - 1)), len(order) - 1)
        pe = order[i]
        stolen = by_pe.get(pe, 0)
        rows.append([f"p{q}", str(stolen), str(totals[pe] - stolen)])
    return rows


def format_summary(s: TraceSummary, planner_stats=None) -> str:
    """Human-readable report: Fig. 7a phase table + Fig. 9 steal profile.

    ``planner_stats``: optional merged :class:`~repro.planners.stats.
    PlannerStats` across regions (the trace does not carry operation
    counts — the caller supplies them, as ``PlanReport.summary`` does).
    When given, a "Planner work" table is appended, with an evals-saved
    line whenever an incremental NN backend did maintenance work.
    """
    from ..bench.harness import format_table

    lines = [
        f"trace: {s.num_events} events, end time {s.end_time:.2f}",
        "",
        "Phase breakdown (Fig. 7a)",
    ]
    known = [p for p in PHASE_NAMES if p in s.phases]
    extra = sorted(set(s.phases) - set(known))
    rows = [[p, f"{s.phases[p]:.2f}"] for p in known + extra]
    rows.append(["total", f"{s.total_phase_time:.2f}"])
    lines.append(format_table(["phase", "time"], rows))

    if planner_stats is not None:
        lines += [
            "",
            "Planner work",
            format_table(
                ["samples", "nn queries", "nn evals", "lp checks", "edges"],
                [[
                    planner_stats.sample_attempts,
                    planner_stats.nn_queries,
                    planner_stats.nn_distance_evals,
                    planner_stats.lp_checks,
                    planner_stats.edges_added,
                ]],
            ),
        ]
        if planner_stats.nn_evals_saved:
            lines.append(
                f"nn evals saved by the incremental index: "
                f"{planner_stats.nn_evals_saved} "
                f"({planner_stats.nn_rebuilds} rebuilds, "
                f"{planner_stats.nn_buffer_hits} buffer hits)"
            )

    lines += [
        "",
        "Work stealing",
        format_table(
            ["requests", "transfers", "fails", "tasks migrated"],
            [[s.steal_requests, s.steal_transfers, s.steal_fails, s.tasks_migrated]],
        ),
    ]
    if s.tasks_executed:
        lines += [
            "",
            f"Tasks: {s.tasks_executed} executed on {len(s.per_pe_tasks)} PEs; "
            f"{s.stolen_fraction():.0%} stolen",
        ]
        steal_rows = _percentile_rows(s.per_pe_stolen_tasks, s.per_pe_tasks)
        if steal_rows:
            lines += [
                "",
                "Steal distribution (Fig. 9, percentiles by stolen count)",
                format_table(["percentile", "stolen", "non-stolen"], steal_rows),
            ]
    if s.pool_dispatches or s.shm_publishes or s.shm_attaches:
        policies = ", ".join(
            f"{p}×{n}" if n > 1 else p for p, n in sorted(s.chunk_policies.items())
        ) or "-"
        lines += [
            "",
            "Dispatch (data plane + chunking)",
            format_table(
                ["pool runs", "policy", "chunks", "tasks", "ctx bytes",
                 "task bytes", "shm pub", "shm attach", "attach ms"],
                [[
                    s.pool_dispatches,
                    policies,
                    s.chunks_issued,
                    s.dispatch_tasks,
                    s.context_bytes,
                    s.task_bytes,
                    f"{s.shm_publishes} ({s.shm_publish_bytes} B)",
                    f"{s.shm_attaches} ({s.shm_attach_bytes} B)",
                    f"{s.shm_attach_s * 1e3:.2f}",
                ]],
            ),
        ]
    if s.queries_executed:
        lines += [
            "",
            "Query serving",
            format_table(
                ["queries", "solved", "queries/sec", "p50 latency", "p99 latency"],
                [[
                    s.queries_executed,
                    s.queries_solved,
                    f"{s.queries_per_sec():.1f}",
                    f"{s.query_latency_percentile(50) * 1e3:.2f} ms",
                    f"{s.query_latency_percentile(99) * 1e3:.2f} ms",
                ]],
            ),
        ]
    if s.cache_hits or s.cache_misses or s.batches_flushed or s.requests_rejected:
        lines += [
            "",
            "Service (snapshot cache + coalescer)",
            format_table(
                ["hits", "misses", "hit rate", "evictions", "batches",
                 "mean batch", "rejected"],
                [[
                    s.cache_hits,
                    s.cache_misses,
                    f"{s.cache_hit_rate():.0%}",
                    s.cache_evictions,
                    s.batches_flushed,
                    f"{s.mean_batch_size():.1f}",
                    s.requests_rejected,
                ]],
            ),
        ]
        if s.flush_reasons:
            reasons = ", ".join(
                f"{r}: {n}" for r, n in sorted(s.flush_reasons.items())
            )
            lines.append(f"flush reasons — {reasons}")
        if s.queries_abandoned:
            lines.append(f"abandoned queries: {s.queries_abandoned}")
    if s.task_retries or s.tasks_abandoned or s.worker_deaths:
        lines += [
            "",
            "Failures",
            format_table(
                ["retries", "abandoned", "worker deaths"],
                [[s.task_retries, s.tasks_abandoned, s.worker_deaths]],
            ),
        ]
        if s.retry_reasons:
            reasons = ", ".join(
                f"{r}: {n}" for r, n in sorted(s.retry_reasons.items())
            )
            lines.append(f"retry reasons — {reasons}")
        if s.abandoned_tasks:
            lines.append(f"abandoned tasks: {sorted(s.abandoned_tasks)}")
    if s.remote_accesses:
        lines.append(f"\nRemote accesses: {s.remote_accesses}")
    for d in s.repartition_decisions:
        moved = d.get("moved", 0)
        lines.append(
            f"\nRepartition: moved {moved} regions, "
            f"overhead {d.get('overhead', 0.0):.2f} "
            f"({'accepted' if d.get('accepted') else 'declined'})"
        )
    return "\n".join(lines)
