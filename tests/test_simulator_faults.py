"""Fault injection in the virtual-time work-stealing simulator."""

import numpy as np
import pytest

from repro.core import POLICY_NAMES, policy_by_name
from repro.obs import (
    EV_TASK_ABANDONED,
    EV_TASK_RETRY,
    EV_WORKER_DEATH,
    Tracer,
)
from repro.runtime import (
    ClusterTopology,
    Fault,
    FaultInjector,
    WorkStealingSimulator,
    run_static_phase,
)


def _uniform_executor(cost=10.0):
    return lambda task, pe: cost


class TestTransientFaults:
    def test_raise_burns_cost_and_retries_on_same_pe(self):
        topo = ClusterTopology(2)
        inj = FaultInjector([Fault("raise", task=3, attempt=0)])
        res = run_static_phase(
            topo, _uniform_executor(10.0), {t: t % 2 for t in range(6)}, fault_injector=inj
        )
        assert res.executed_by == {t: t % 2 for t in range(6)}
        assert res.task_attempts[3] == 2
        assert res.retries == 1
        assert res.abandoned == []
        assert res.worker_deaths == 0
        owner = 3 % 2
        assert res.pe_stats[owner].wasted_time == pytest.approx(10.0)
        assert res.pe_stats[owner].attempts_failed == 1
        # Useful work is conserved: wasted time is accounted separately.
        assert res.total_work() == pytest.approx(60.0)

    def test_hang_fault_stretches_the_task(self):
        topo = ClusterTopology(1)
        inj = FaultInjector([Fault("hang", task=0, attempt=0, hang=7.0)])
        res = run_static_phase(topo, _uniform_executor(10.0), {0: 0, 1: 0}, fault_injector=inj)
        assert res.task_costs[0] == pytest.approx(17.0)
        assert res.task_costs[1] == pytest.approx(10.0)
        assert res.makespan == pytest.approx(27.0)
        assert res.retries == 0

    def test_retries_exhausted_abandons_and_terminates(self):
        topo = ClusterTopology(2)
        inj = FaultInjector([Fault("raise", task=1, attempt=a) for a in range(5)])
        res = run_static_phase(
            topo, _uniform_executor(), {t: 0 for t in range(4)}, fault_injector=inj,
            max_retries=1,
        )
        assert res.abandoned == [1]
        assert 1 not in res.executed_by
        assert len(res.executed_by) == 3
        assert res.task_attempts[1] == 2
        # The simulator is a study tool: it always degrades, never raises.
        assert res.retries == 1


class TestWorkerDeath:
    def test_crash_redispatches_queue_to_survivors(self):
        topo = ClusterTopology(3)
        inj = FaultInjector([Fault("crash", worker=0, attempt=0)])
        res = run_static_phase(
            topo, _uniform_executor(5.0), {t: t % 3 for t in range(9)}, fault_injector=inj
        )
        assert res.worker_deaths == 1
        assert res.abandoned == []
        # PE 0 died picking up its first task: it executed nothing and all
        # nine tasks still ran, on the survivors.
        assert res.pe_stats[0].tasks_executed == 0
        assert set(res.executed_by) == set(range(9))
        assert set(res.executed_by.values()) <= {1, 2}
        assert res.pe_stats[0].tasks_lost == 3

    def test_redispatch_pays_transfer_latency(self):
        topo = ClusterTopology(2)
        inj = FaultInjector([Fault("crash", worker=0, attempt=0)])
        clean = run_static_phase(topo, _uniform_executor(5.0), {t: t % 2 for t in range(4)})
        faulty = run_static_phase(
            topo, _uniform_executor(5.0), {t: t % 2 for t in range(4)}, fault_injector=inj
        )
        assert faulty.makespan > clean.makespan

    def test_all_pes_dead_abandons_everything(self):
        topo = ClusterTopology(2)
        inj = FaultInjector([Fault("crash", worker=0), Fault("crash", worker=1)])
        res = run_static_phase(
            topo, _uniform_executor(), {t: t % 2 for t in range(6)}, fault_injector=inj
        )
        assert res.worker_deaths == 2
        assert res.executed_by == {}
        assert sorted(res.abandoned) == list(range(6))

    def test_in_flight_task_consumes_an_attempt(self):
        topo = ClusterTopology(2)
        inj = FaultInjector([Fault("crash", worker=0, attempt=0)])
        res = run_static_phase(
            topo, _uniform_executor(), {0: 0, 1: 1}, fault_injector=inj
        )
        # Task 0 was in PE 0's hands at death: attempt consumed, then
        # re-run on the survivor.
        assert res.task_attempts[0] == 2
        assert res.executed_by[0] == 1


class TestFaultsUnderStealing:
    def _run(self, policy, inj, P=8, tasks=48, seed=0, **kw):
        topo = ClusterTopology(P, cores_per_node=4)
        sim = WorkStealingSimulator(
            topo,
            _uniform_executor(10.0),
            steal_policy=policy,
            rng=np.random.default_rng(seed),
            fault_injector=inj,
            **kw,
        )
        return sim.run({t: 0 for t in range(tasks)})

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_every_policy_survives_a_crash(self, name):
        inj = FaultInjector([Fault("crash", worker=2, attempt=0)])
        res = self._run(policy_by_name(name), inj)
        assert res.worker_deaths <= 1  # PE 2 only dies if it got work
        assert res.abandoned == []
        assert set(res.executed_by) == set(range(48))
        assert all(res.executed_by[t] != 2 for t in res.executed_by if res.worker_deaths)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_every_policy_deterministic_under_rate_faults(self, name):
        inj_args = dict(rate=0.2, seed=7)
        a = self._run(policy_by_name(name), FaultInjector(**inj_args))
        b = self._run(policy_by_name(name), FaultInjector(**inj_args))
        assert a.makespan == b.makespan
        assert a.executed_by == b.executed_by
        assert a.task_attempts == b.task_attempts
        assert a.abandoned == b.abandoned

    def test_dead_victim_answers_steal_with_failure(self):
        # Everything on PE 0, PE 1 crashes picking up redispatched work is
        # impossible (it has none) — instead crash a PE *with* work and
        # let thieves probe it: rounds must complete, not hang.
        inj = FaultInjector([Fault("crash", worker=0, attempt=0)])
        res = self._run(policy_by_name("rand-k"), inj)
        assert res.worker_deaths == 1
        assert res.abandoned == []
        assert set(res.executed_by) == set(range(48))
        assert res.pe_stats[0].tasks_executed == 0

    def test_work_conserved_under_crash(self):
        # A crash redistributes work, it must not create or destroy it:
        # every task still runs exactly once somewhere.  (Makespan can go
        # either way — eager redispatch sometimes beats lazy stealing.)
        faulty = self._run(
            policy_by_name("hybrid"),
            FaultInjector([Fault("crash", worker=1, attempt=0)]),
        )
        assert faulty.total_work() == pytest.approx(48 * 10.0)
        assert sum(s.tasks_executed for s in faulty.pe_stats) == 48


class TestFaultObservability:
    def test_events_and_metrics(self):
        tr = Tracer()
        topo = ClusterTopology(2)
        inj = FaultInjector(
            [Fault("raise", task=0, attempt=0), Fault("crash", worker=1, attempt=0)]
        )
        res = run_static_phase(
            topo, _uniform_executor(), {t: t % 2 for t in range(4)},
            tracer=tr, fault_injector=inj,
        )
        names = [e.name for e in tr.memory.events]
        assert EV_TASK_RETRY in names
        assert EV_WORKER_DEATH in names
        assert res.worker_deaths == 1
        assert tr.metrics.counter("worker_deaths").value == 1
        assert tr.metrics.counter("task_attempts_failed").value >= 1

    def test_abandonment_event(self):
        tr = Tracer()
        topo = ClusterTopology(1)
        inj = FaultInjector([Fault("raise", task=0, attempt=a) for a in range(3)])
        res = run_static_phase(
            topo, _uniform_executor(), {0: 0}, tracer=tr,
            fault_injector=inj, max_retries=1,
        )
        assert res.abandoned == [0]
        assert EV_TASK_ABANDONED in [e.name for e in tr.memory.events]
        assert tr.metrics.counter("tasks_abandoned").value == 1


class TestNoInjectorUnchanged:
    def test_no_attempt_tracking_without_injector(self):
        topo = ClusterTopology(2)
        res = run_static_phase(topo, _uniform_executor(), {t: t % 2 for t in range(4)})
        assert res.task_attempts == {}
        assert res.retries == 0
        assert res.worker_deaths == 0
        assert res.abandoned == []

    def test_max_retries_validation(self):
        with pytest.raises(ValueError):
            WorkStealingSimulator(ClusterTopology(1), _uniform_executor(), max_retries=-1)
