"""Tests for the cluster topology / latency model."""

import pytest

from repro.runtime import ClusterTopology, mesh_shape_for


class TestMeshShape:
    def test_square(self):
        assert mesh_shape_for(16) == (4, 4)

    def test_rectangular(self):
        rows, cols = mesh_shape_for(96)
        assert rows * cols == 96
        assert rows <= cols

    def test_prime_degenerates_to_row(self):
        assert mesh_shape_for(13) == (1, 13)

    def test_invalid(self):
        with pytest.raises(ValueError):
            mesh_shape_for(0)


class TestClusterTopology:
    @pytest.fixture
    def topo(self):
        return ClusterTopology(48, cores_per_node=8, latency_local=1.0, latency_remote=10.0)

    def test_node_mapping(self, topo):
        assert topo.node_of(0) == 0
        assert topo.node_of(7) == 0
        assert topo.node_of(8) == 1
        assert topo.num_nodes == 6

    def test_latency_asymmetry(self, topo):
        assert topo.latency(0, 0) == 0.0
        assert topo.latency(0, 7) == 1.0  # same node
        assert topo.latency(0, 8) == 10.0  # cross node

    def test_latency_symmetric(self, topo):
        assert topo.latency(3, 19) == topo.latency(19, 3)

    def test_payload_adds_bandwidth(self, topo):
        base = topo.latency(0, 8)
        with_payload = topo.latency(0, 8, payload=100)
        assert with_payload == pytest.approx(base + 100 * topo.bandwidth_cost)

    def test_out_of_range_pe(self, topo):
        with pytest.raises(IndexError):
            topo.latency(0, 48)
        with pytest.raises(IndexError):
            topo.node_of(-1)

    def test_mesh_round_trip(self, topo):
        for pe in range(48):
            r, c = topo.mesh_coords(pe)
            assert topo.mesh_pe(r, c) == pe

    def test_mesh_neighbors_interior(self, topo):
        rows, cols = topo.mesh_shape
        pe = topo.mesh_pe(1, 1)
        nbrs = topo.mesh_neighbors(pe)
        assert len(nbrs) == 4
        assert pe not in nbrs

    def test_mesh_neighbors_corner(self, topo):
        nbrs = topo.mesh_neighbors(0)
        assert len(nbrs) == 2

    def test_mesh_neighbors_symmetric(self, topo):
        for pe in range(48):
            for n in topo.mesh_neighbors(pe):
                assert pe in topo.mesh_neighbors(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(0)
        with pytest.raises(ValueError):
            ClusterTopology(4, latency_local=-1.0)
