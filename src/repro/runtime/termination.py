"""Global termination detection.

Work stealing needs to decide when *no* PE has work left and none is in
flight (Algorithm 3's outer ``while Global termination not detected``).
We implement the classic Dijkstra–Safra token-ring algorithm: a token
circulates carrying a message-count accumulator and a colour; a PE that
sends work after passing the token taints itself black, forcing another
round.  Termination is declared when a white token with balanced counts
returns to PE 0.

The simulator itself knows when work is exhausted (it is omniscient), so
this module serves two purposes: (1) realism — the *detection delay* it
computes is charged to reported execution times; (2) a correctness
reference, property-tested against the omniscient answer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenRingDetector", "detection_delay"]

WHITE, BLACK = 0, 1


@dataclass
class _PEState:
    color: int = WHITE
    #: messages sent minus messages received (Safra's counter).
    count: int = 0
    active: bool = False


class TokenRingDetector:
    """Dijkstra–Safra termination detection over ``num_pes`` PEs.

    Drive it with :meth:`on_send`, :meth:`on_receive`, :meth:`set_active`;
    call :meth:`try_circulate` to let PE 0 launch / forward the token when
    the local PE is passive.  Returns True once termination is detected.
    """

    def __init__(self, num_pes: int):
        if num_pes < 1:
            raise ValueError("num_pes must be >= 1")
        self.num_pes = num_pes
        self._pe = [_PEState() for _ in range(num_pes)]
        self._token_pos: int | None = None
        self._token_color = WHITE
        self._token_count = 0
        self.rounds = 0
        self.detected = False

    # -- events ----------------------------------------------------------------
    def set_active(self, pe: int, active: bool) -> None:
        """Record a PE becoming busy (True) or idle (False)."""
        self._pe[pe].active = active

    def on_send(self, pe: int) -> None:
        """Count a message leaving ``pe``."""
        self._pe[pe].count += 1

    def on_receive(self, pe: int) -> None:
        """Count a message arriving at ``pe``; reactivates and taints it."""
        self._pe[pe].count -= 1
        # Receiving work makes a PE active and taints it: a white token that
        # already passed it must not report termination.
        self._pe[pe].color = BLACK
        self._pe[pe].active = True

    # -- token protocol ----------------------------------------------------------
    def try_circulate(self) -> bool:
        """Advance the token as far as passive PEs allow; True on detection."""
        if self.detected:
            return True
        if self._token_pos is None:
            # PE 0 initiates when passive.
            if self._pe[0].active:
                return False
            self._token_pos = self.num_pes - 1 if self.num_pes > 1 else 0
            self._token_color = WHITE
            self._token_count = 0
            self.rounds += 1
            if self.num_pes == 1:
                self._token_count += self._pe[0].count
                return self._evaluate_at_origin()
        while self._token_pos is not None:
            pos = self._token_pos
            state = self._pe[pos]
            if state.active:
                return False  # token waits at an active PE
            # Forward: accumulate and maybe taint.
            self._token_count += state.count
            if state.color == BLACK:
                self._token_color = BLACK
            state.color = WHITE
            if pos == 0:
                return self._evaluate_at_origin()
            self._token_pos = pos - 1
        return self.detected

    def _evaluate_at_origin(self) -> bool:
        # The sweep has already accumulated every PE's counter (including
        # PE 0's), so the balance test is on the token alone.
        origin = self._pe[0]
        if (
            not origin.active
            and self._token_color == WHITE
            and origin.color == WHITE
            and self._token_count == 0
        ):
            self.detected = True
            self._token_pos = None
            return True
        # Failed round: restart.
        self._token_pos = None
        self._token_color = WHITE
        self._token_count = 0
        origin.color = WHITE
        return False


def detection_delay(num_pes: int, latency: float, rounds: int = 1) -> float:
    """Virtual-time cost of termination detection.

    Production runtimes (STAPL included) detect termination with a
    *hierarchical* reduction rather than a serial ring, so a round costs
    an up-and-down tree sweep: ``2 * ceil(log2 P)`` hops.  After real
    quiescence one clean sweep suffices (``rounds = 1``; tainted rounds
    overlap the steal traffic that caused them).  The serial
    :class:`TokenRingDetector` above is the correctness reference; this
    is the cost model.
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    import numpy as np

    return rounds * 2.0 * float(np.ceil(np.log2(max(num_pes, 2)))) * latency


def detection_delay_tree(topology, rounds: int = 1) -> float:
    """Topology-aware variant of :func:`detection_delay`.

    The reduction tree's lower levels stay inside shared-memory nodes and
    pay intra-node latency; only the upper ``log2(num_nodes)`` levels pay
    inter-node latency.
    """
    import numpy as np

    P = topology.num_pes
    levels = int(np.ceil(np.log2(max(P, 2))))
    local_levels = min(levels, int(np.ceil(np.log2(max(topology.cores_per_node, 2)))))
    remote_levels = levels - local_levels
    per_round = 2.0 * (
        local_levels * topology.latency_local + remote_levels * topology.latency_remote
    )
    return rounds * per_round
