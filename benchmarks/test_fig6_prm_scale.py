"""Fig. 6: PRM med-cube at scale (384-3,072 PEs)."""

from repro.bench import fig6_prm_scale


def test_fig6_prm_scale(once):
    rows = once(fig6_prm_scale)
    by_pe = {}
    for r in rows:
        by_pe.setdefault(r.num_pes, {})[r.strategy] = r
    pes = sorted(by_pe)
    # Repartitioning keeps winning at scale ...
    for P in pes[:-1]:
        assert by_pe[P]["repartition"].speedup_vs_none > 1.2
    # ... though the benefit shrinks as regions-per-PE drop.
    assert by_pe[pes[-1]]["repartition"].speedup_vs_none < by_pe[pes[0]]["repartition"].speedup_vs_none + 1.0
