"""The paper's contribution: load-balanced parallel PRM and RRT."""

from .metrics import (
    PhaseBreakdown,
    PlannerRunResult,
    coefficient_of_variation,
    emit_phase_spans,
    ideal_loads,
    max_load_reduction,
    percent_improvement,
    phases_dict,
    speedup,
)
from .model import ModelEnvironmentAnalysis, ModelPoint
from .parallel_prm import (
    AdjacencyWork,
    PhaseTimes,
    PRMRunResult,
    PRMWorkload,
    RegionWork,
    build_prm_workload,
    simulate_prm,
)
from .parallel_rrt import (
    BranchAdjacencyWork,
    BranchWork,
    RRTPhaseTimes,
    RRTRunResult,
    RRTWorkload,
    build_rrt_workload,
    simulate_rrt,
)
from .repartition import RepartitionResult, repartition
from .weights import (
    prm_free_volume_weights,
    prm_sample_count_weights,
    rrt_k_rays_weights,
    uniform_weights,
)
from .work_stealing import (
    POLICY_NAMES,
    DiffusivePolicy,
    HybridPolicy,
    RandKPolicy,
    policy_by_name,
)

__all__ = [
    "PhaseBreakdown",
    "PlannerRunResult",
    "coefficient_of_variation",
    "emit_phase_spans",
    "ideal_loads",
    "max_load_reduction",
    "percent_improvement",
    "phases_dict",
    "speedup",
    "ModelEnvironmentAnalysis",
    "ModelPoint",
    "AdjacencyWork",
    "PhaseTimes",
    "PRMRunResult",
    "PRMWorkload",
    "RegionWork",
    "build_prm_workload",
    "simulate_prm",
    "BranchAdjacencyWork",
    "BranchWork",
    "RRTPhaseTimes",
    "RRTRunResult",
    "RRTWorkload",
    "build_rrt_workload",
    "simulate_rrt",
    "RepartitionResult",
    "repartition",
    "prm_free_volume_weights",
    "prm_sample_count_weights",
    "rrt_k_rays_weights",
    "uniform_weights",
    "DiffusivePolicy",
    "HybridPolicy",
    "RandKPolicy",
    "POLICY_NAMES",
    "policy_by_name",
]
