"""Fig. 7(a): phase breakdown of parallel PRM."""

from repro.bench import fig7a_phase_breakdown


def test_fig7a_phase_breakdown(once):
    out = once(fig7a_phase_breakdown)
    by = {o["strategy"]: o for o in out}
    none = by["none"]
    # Node connection dominates the unbalanced run.
    assert none["node_connection"] > none["other"]
    assert none["node_connection"] > 0.3 * none["total"]
    # Load balancing cuts node-connection time.
    for name in ("repartition", "hybrid", "rand-8"):
        assert by[name]["node_connection"] < none["node_connection"]
    # Repartitioning pays for it with more region-connection time than the
    # work-stealing runs (edge-cut growth) at equal or better total.
    assert by["repartition"]["total"] < none["total"]
