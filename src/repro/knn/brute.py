"""Vectorised brute-force nearest neighbours.

O(n) per query but with NumPy constants small enough that it beats the
tree structures below a few thousand points — the regime of regional
roadmaps under heavy over-decomposition.
"""

from __future__ import annotations

import numpy as np

from .base import NeighborFinder

__all__ = ["BruteForceNN"]

_INITIAL_CAPACITY = 64


class BruteForceNN(NeighborFinder):
    """Amortised-growth array of points; queries are one broadcast each."""

    def __init__(self, dim: int):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._points = np.empty((_INITIAL_CAPACITY, dim))
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n = 0

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        cap = self._points.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        self._points = np.resize(self._points, (new_cap, self.dim))
        self._ids = np.resize(self._ids, new_cap)

    def add(self, point_id: int, point: np.ndarray) -> None:
        self._ensure_capacity(1)
        self._points[self._n] = point
        self._ids[self._n] = point_id
        self._n += 1

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        self._ensure_capacity(points.shape[0])
        self._points[self._n : self._n + points.shape[0]] = points
        self._ids[self._n : self._n + points.shape[0]] = ids
        self._n += points.shape[0]

    def _distances(self, query: np.ndarray) -> np.ndarray:
        pts = self._points[: self._n]
        self.stats.queries += 1
        self.stats.distance_evals += self._n
        return np.linalg.norm(pts - np.asarray(query, dtype=float)[None, :], axis=1)

    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0 or k <= 0:
            return []
        d = self._distances(query)
        ids = self._ids[: self._n]
        if exclude is not None:
            mask = ids != exclude
            d, ids = d[mask], ids[mask]
        if d.size == 0:
            return []
        k_eff = min(k, d.size)
        idx = np.argpartition(d, k_eff - 1)[:k_eff]
        order = idx[np.argsort(d[idx], kind="stable")]
        return [(int(ids[i]), float(d[i])) for i in order]

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0:
            return []
        d = self._distances(query)
        ids = self._ids[: self._n]
        mask = d <= r
        if exclude is not None:
            mask &= ids != exclude
        sel = np.nonzero(mask)[0]
        sel = sel[np.argsort(d[sel], kind="stable")]
        return [(int(ids[i]), float(d[i])) for i in sel]

    def __len__(self) -> int:
        return self._n
