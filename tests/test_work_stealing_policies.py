"""Tests for the victim-selection policies."""

import numpy as np
import pytest

from repro.core import DiffusivePolicy, HybridPolicy, RandKPolicy, policy_by_name
from repro.runtime import ClusterTopology


@pytest.fixture
def topo():
    return ClusterTopology(16, cores_per_node=4)


class TestRandK:
    def test_k_distinct_victims_excluding_self(self, topo, rng):
        policy = RandKPolicy(8)
        for _ in range(20):
            victims = policy.select_victims(3, 0, topo, rng)
            assert len(victims) == 8
            assert len(set(victims)) == 8
            assert 3 not in victims

    def test_k_capped_by_machine(self, rng):
        topo = ClusterTopology(4)
        victims = RandKPolicy(8).select_victims(0, 0, topo, rng)
        assert len(victims) == 3

    def test_single_pe_no_victims(self, rng):
        topo = ClusterTopology(1)
        assert RandKPolicy(8).select_victims(0, 0, topo, rng) == []

    def test_varies_between_calls(self, topo, rng):
        policy = RandKPolicy(4)
        draws = {tuple(policy.select_victims(0, 0, topo, rng)) for _ in range(10)}
        assert len(draws) > 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RandKPolicy(0)


class TestDiffusive:
    def test_selects_mesh_neighbors(self, topo, rng):
        policy = DiffusivePolicy()
        victims = policy.select_victims(5, 0, topo, rng)
        assert set(victims) == set(topo.mesh_neighbors(5))

    def test_same_every_round(self, topo, rng):
        policy = DiffusivePolicy()
        assert policy.select_victims(5, 0, topo, rng) == policy.select_victims(5, 3, topo, rng)


class TestHybrid:
    def test_first_round_is_diffusive(self, topo, rng):
        policy = HybridPolicy()
        assert set(policy.select_victims(5, 0, topo, rng)) == set(topo.mesh_neighbors(5))

    def test_fallback_is_random(self, topo, rng):
        policy = HybridPolicy(k=6)
        victims = policy.select_victims(5, 1, topo, rng)
        assert len(victims) == 6
        assert 5 not in victims


class TestFactory:
    def test_known_names(self):
        assert policy_by_name("rand-8").name == "rand-8"
        assert policy_by_name("rand-k", k=3).k == 3
        assert policy_by_name("diffusive").name == "diffusive"
        assert policy_by_name("hybrid").name.startswith("hybrid")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            policy_by_name("lifo")
