"""Machine topology and message-latency model.

Two aspects of the physical machine matter to the paper's load balancers:

* **Steal cost asymmetry** — "the cost of stealing from a processor on the
  same shared-memory node is generally less than the cost of stealing from
  a processor on another node" (Sec. III-A).  We model a cluster of
  multi-core nodes with distinct intra-node and inter-node latencies.
* **Mesh neighbourhoods** — the DIFFUSIVE policy "assumes processors are
  arranged in a 2D mesh" and steals only from mesh neighbours.

Latencies are in the same abstract virtual-time unit the
:class:`~repro.planners.stats.WorkModel` produces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ClusterTopology", "mesh_shape_for"]


def mesh_shape_for(num_pes: int) -> "tuple[int, int]":
    """Most-square 2D factorisation ``rows x cols == num_pes``."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    rows = int(np.floor(np.sqrt(num_pes)))
    while rows > 1 and num_pes % rows != 0:
        rows -= 1
    return rows, num_pes // rows


class ClusterTopology:
    """A cluster of shared-memory nodes, logically arranged as a 2D mesh.

    Parameters
    ----------
    num_pes:
        Total processing elements.
    cores_per_node:
        PEs per shared-memory node (24 matches the paper's Hopper Cray XE6
        nodes).
    latency_local / latency_remote:
        One-way message latency between PEs on the same / different nodes.
    bandwidth_cost:
        Additional latency per unit of payload size (e.g. per migrated
        region or per roadmap vertex shipped).
    """

    def __init__(
        self,
        num_pes: int,
        cores_per_node: int = 24,
        latency_local: float = 1.0,
        latency_remote: float = 10.0,
        bandwidth_cost: float = 0.05,
    ):
        if num_pes < 1:
            raise ValueError("num_pes must be >= 1")
        if cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if latency_local < 0 or latency_remote < 0 or bandwidth_cost < 0:
            raise ValueError("latencies must be non-negative")
        self.num_pes = num_pes
        self.cores_per_node = cores_per_node
        self.latency_local = latency_local
        self.latency_remote = latency_remote
        self.bandwidth_cost = bandwidth_cost
        self.mesh_shape = mesh_shape_for(num_pes)

    # -- node structure ------------------------------------------------------
    def node_of(self, pe: int) -> int:
        """Node index hosting ``pe``."""
        self._check(pe)
        return pe // self.cores_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when both PEs share a node (cheap intra-node latency)."""
        return self.node_of(a) == self.node_of(b)

    @property
    def num_nodes(self) -> int:
        """Node count (ceiling of PEs / cores per node)."""
        return -(-self.num_pes // self.cores_per_node)

    # -- latency ---------------------------------------------------------------
    def latency(self, src: int, dst: int, payload: float = 0.0) -> float:
        """One-way latency of a message from ``src`` to ``dst``."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0.0
        base = self.latency_local if self.same_node(src, dst) else self.latency_remote
        return base + self.bandwidth_cost * payload

    # -- 2D mesh -----------------------------------------------------------------
    def mesh_coords(self, pe: int) -> "tuple[int, int]":
        """(row, col) of ``pe`` in the logical 2-D mesh."""
        self._check(pe)
        _rows, cols = self.mesh_shape
        return pe // cols, pe % cols

    def mesh_pe(self, row: int, col: int) -> int:
        """PE at (row, col); IndexError outside the mesh."""
        rows, cols = self.mesh_shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"mesh coords ({row},{col}) out of {self.mesh_shape}")
        return row * cols + col

    def mesh_neighbors(self, pe: int) -> "list[int]":
        """4-neighbourhood of ``pe`` in the logical 2D mesh."""
        row, col = self.mesh_coords(pe)
        rows, cols = self.mesh_shape
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < rows and 0 <= c < cols:
                out.append(self.mesh_pe(r, c))
        return out

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.num_pes:
            raise IndexError(f"PE {pe} out of range [0, {self.num_pes})")
