"""Benchmark-regression suite for the planner-construction hot paths.

Times the operations the PRM and RRT builds spend their lives in —
sequential-vs-batched roadmap construction, sequential-vs-batched RRT
growth (plain med-cube growth and the radial-subdivision workload on a
Fig. 10 environment), batched local planning, k-NN, amortised query
serving (single and batched, plus k-NN backend scaling), pool scaling,
BVH-vs-brute-force collision scaling on procedural warehouse scenes
(bit-exact verdict parity at 10^3-10^5 obstacles), and the incremental
kd-ladder NN backend (growing query-then-insert streams across tree
sizes, plus a full RRT build against the brute-force oracle with
bit-exact edge/parent parity) —
on fixed seeds, and writes the measurements to a JSON file
(``BENCH_perf.json`` by default) so regressions show up as diffs.

Every timed comparison also *verifies* that the fast path produces the
same operation counts as the reference path: the virtual-time model
depends on ``PlannerStats`` and ``CollisionCounters`` being identical, so
a speedup that changes the counts is a bug, not a win.

Usage::

    python -m repro.bench perf                     # medium scale -> BENCH_perf.json
    python -m repro.bench perf --scale smoke       # quick CI-sized run
    python -m repro.bench perf --output out.json
    python -m repro.bench perf --check out.json    # validate an existing file
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import asdict
from functools import partial

import numpy as np

from ..core.parallel_rrt import build_rrt_workload
from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import EuclideanCSpace
from ..geometry import environments
from ..kernels import get_backend
from ..knn.brute import BruteForceNN
from ..knn.incremental import IncrementalNN
from ..knn.kdtree import KDTreeNN
from ..planners.engine import QueryEngine
from ..planners.prm import PRM
from ..planners.query import RoadmapQuery
from ..planners.rrt import RRT
from ..runtime.local_pool import run_tasks_parallel

__all__ = ["run_suite", "main", "validate", "SCALES"]

#: Benchmark sizes.  "medium" is the checked-in regression baseline;
#: "smoke" is CI-sized (seconds, not minutes).
SCALES = {
    "smoke": {
        "prm_samples": 400, "lp_pairs": 400, "knn_points": 1000, "pool_tasks": 16,
        "rrt_nodes": 300, "rrt_regions": 6, "rrt_nodes_per_region": 8, "repeats": 2,
        "query_vertices": 400, "query_count": 25,
        "knn_scale_points": 4000, "knn_scale_queries": 50,
        "kernel_points": 2000, "kernel_segments": 1000,
        "kernel_knn_stored": 1000, "kernel_knn_queries": 64,
        "kernel_lp_pairs": 300, "kernel_prm_samples": 250, "kernel_prm_queries": 20,
        "bvh_sizes": [300, 2000], "bvh_prm_obstacles": 500, "bvh_prm_samples": 150,
        "incnn_sizes": [500, 2000], "incnn_rrt_nodes": 300, "incnn_stream_points": 2000,
        "dispatch_tiny": 48, "dispatch_big": 2, "dispatch_big_s": 0.005,
        "shm_obstacles": 2000, "shm_regions": 8, "shm_samples": 3,
    },
    "medium": {
        "prm_samples": 2000, "lp_pairs": 4000, "knn_points": 4000, "pool_tasks": 64,
        "rrt_nodes": 2000, "rrt_regions": 16, "rrt_nodes_per_region": 20, "repeats": 5,
        "query_vertices": 2000, "query_count": 100,
        "knn_scale_points": 20000, "knn_scale_queries": 200,
        "kernel_points": 20000, "kernel_segments": 8000,
        "kernel_knn_stored": 4000, "kernel_knn_queries": 512,
        "kernel_lp_pairs": 3000, "kernel_prm_samples": 1200, "kernel_prm_queries": 60,
        "bvh_sizes": [1000, 10000, 100000], "bvh_prm_obstacles": 3000, "bvh_prm_samples": 500,
        "incnn_sizes": [2000, 8000, 20000], "incnn_rrt_nodes": 20000,
        "incnn_stream_points": 20000,
        "dispatch_tiny": 256, "dispatch_big": 4, "dispatch_big_s": 0.02,
        "shm_obstacles": 20000, "shm_regions": 16, "shm_samples": 3,
    },
}

_ENV_NAME = "med-cube"
#: Scene for the kernel microbenches — 125 obstacles, enough per-query
#: work for the blocked float32 layouts to show their advantage.
_KERNEL_ENV = "mixed-30"
#: Decision-boundary guard for the fast32 equivalence gates: a query is
#: *stable* when the reference verdict is unchanged after inflating or
#: shrinking every obstacle (and shrinking the free bounds) by this much.
_STABILITY_EPS = 1e-6
_SEED = 42


def _numba_version() -> "str | None":
    """Installed numba version, or None when the optional dep is absent."""
    try:
        import numba

        return str(numba.__version__)
    except ImportError:
        return None


def _best_of(repeats: int, fn) -> "tuple[float, object]":
    """Best wall time over ``repeats`` runs (minimum is the low-noise
    estimator for fixed-work benchmarks); returns (time, last result)."""
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return float(best), out


def _cspace():
    return EuclideanCSpace(environments.by_name(_ENV_NAME))


def bench_prm_build(params: dict) -> dict:
    """Sequential vs batched PRM build on the default path
    (``connect_same_component=True``), with operation-count parity
    asserted field for field."""
    n = params["prm_samples"]

    def run(batched: bool):
        """One timed PRM build; returns comparable observables."""
        cs = _cspace()
        prm = PRM(cs, k=6, connect_same_component=True, batched=batched)
        res = prm.build(n, np.random.default_rng(_SEED))
        counters = (cs.env.counters.point_checks, cs.env.counters.segment_checks)
        edges = sorted((min(u, v), max(u, v)) for u, v, _w in res.roadmap.edges())
        return asdict(res.stats), counters, edges

    before_s, ref = _best_of(params["repeats"], lambda: run(False))
    after_s, fast = _best_of(params["repeats"], lambda: run(True))
    stats_equal = ref[0] == fast[0]
    counters_equal = ref[1] == fast[1]
    edges_equal = ref[2] == fast[2]
    if not (stats_equal and counters_equal and edges_equal):
        raise AssertionError(
            "batched PRM build diverged from the sequential reference: "
            f"stats_equal={stats_equal} counters_equal={counters_equal} "
            f"edges_equal={edges_equal}"
        )
    return {
        "n_samples": n,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "stats_equal": stats_equal,
        "counters_equal": counters_equal,
        "edges_equal": edges_equal,
        "lp_calls": ref[0]["lp_calls"],
        "lp_checks": ref[0]["lp_checks"],
    }


def bench_rrt_build(params: dict) -> dict:
    """Sequential vs batched (predict-validate-replay) RRT growth on
    med-cube, with the full parity surface — stats, counters, exact edge
    weights, parent pointers — asserted field for field."""
    n = params["rrt_nodes"]

    def run(batched: bool):
        """One timed RRT growth; returns comparable observables."""
        cs = _cspace()
        rrt = RRT(cs, step_size=0.6, goal_bias=0.05, batched=batched)
        res = rrt.grow(np.full(cs.dim, -9.0), n, np.random.default_rng(_SEED))
        counters = (cs.env.counters.point_checks, cs.env.counters.segment_checks)
        edges = sorted((min(u, v), max(u, v), w) for u, v, w in res.tree.edges())
        return asdict(res.stats), counters, edges, dict(res.parents)

    before_s, ref = _best_of(params["repeats"], lambda: run(False))
    after_s, fast = _best_of(params["repeats"], lambda: run(True))
    stats_equal = ref[0] == fast[0]
    counters_equal = ref[1] == fast[1]
    edges_equal = ref[2] == fast[2] and ref[3] == fast[3]
    if not (stats_equal and counters_equal and edges_equal):
        raise AssertionError(
            "batched RRT growth diverged from the sequential reference: "
            f"stats_equal={stats_equal} counters_equal={counters_equal} "
            f"edges_equal={edges_equal}"
        )
    return {
        "n_nodes": n,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "stats_equal": stats_equal,
        "counters_equal": counters_equal,
        "edges_equal": edges_equal,
        "nn_distance_evals": ref[0]["nn_distance_evals"],
        "lp_checks": ref[0]["lp_checks"],
    }


def bench_rrt_radial_workload(params: dict) -> dict:
    """Sequential vs batched radial-subdivision RRT workload build on the
    Fig. 10 mixed-30 environment (Alg. 2 branch growth plus connection),
    parity asserted on the merged tree, per-branch stats, and counters."""
    regions = params["rrt_regions"]
    npr = params["rrt_nodes_per_region"]

    def run(batched: bool):
        """One timed radial workload build; returns comparable observables."""
        cs = EuclideanCSpace(environments.by_name("mixed-30"))
        wl = build_rrt_workload(
            cs, np.full(cs.dim, -9.0), regions, nodes_per_region=npr,
            seed=_SEED, batched=batched,
        )
        counters = (cs.env.counters.point_checks, cs.env.counters.segment_checks)
        edges = sorted((min(u, v), max(u, v), w) for u, v, w in wl.tree.edges())
        branch = {rid: asdict(b.stats) for rid, b in wl.branch_work.items()}
        return branch, counters, edges

    before_s, ref = _best_of(params["repeats"], lambda: run(False))
    after_s, fast = _best_of(params["repeats"], lambda: run(True))
    stats_equal = ref[0] == fast[0]
    counters_equal = ref[1] == fast[1]
    edges_equal = ref[2] == fast[2]
    if not (stats_equal and counters_equal and edges_equal):
        raise AssertionError(
            "batched radial RRT workload diverged from the sequential "
            f"reference: stats_equal={stats_equal} "
            f"counters_equal={counters_equal} edges_equal={edges_equal}"
        )
    return {
        "environment": "mixed-30",
        "n_regions": regions,
        "nodes_per_region": npr,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "stats_equal": stats_equal,
        "counters_equal": counters_equal,
        "edges_equal": edges_equal,
    }


def bench_batch_local_plan(params: dict) -> dict:
    """Per-pair local planner calls vs one ``batch_pairs`` invocation."""
    m = params["lp_pairs"]
    cs = _cspace()
    rng = np.random.default_rng(_SEED)
    lo, hi = cs.bounds.lo, cs.bounds.hi
    starts = rng.uniform(lo, hi, size=(m, cs.dim))
    ends = starts + rng.uniform(-1.0, 1.0, size=(m, cs.dim))
    ends = np.clip(ends, lo, hi)
    lp = StraightLinePlanner(resolution=0.25)

    def run_loop():
        """Baseline: one local-planner call per pair."""
        ok = np.empty(m, dtype=bool)
        checks = 0
        for i in range(m):
            r = lp(cs, starts[i], ends[i])
            ok[i] = r.valid
            checks += r.checks
        return ok, checks

    def run_batch():
        """Vectorised: all pairs in one batch_pairs call."""
        ok, checks, _lengths = lp.batch_pairs(cs, starts, ends)
        return ok, checks

    before_s, (ok0, ch0) = _best_of(params["repeats"], run_loop)
    after_s, (ok1, ch1) = _best_of(params["repeats"], run_batch)
    if not (np.array_equal(ok0, ok1) and ch0 == ch1):
        raise AssertionError("batch_pairs diverged from the per-pair reference")
    return {
        "n_pairs": m,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "checks": int(ch0),
    }


def bench_knn(params: dict) -> dict:
    """Interleaved query/insert k-NN loop vs the growing-visibility block
    query used by the batched build."""
    n = params["knn_points"]
    k = 6
    rng = np.random.default_rng(_SEED)
    pts = rng.uniform(0.0, 10.0, size=(n, 3))
    ids = np.arange(n, dtype=np.int64)

    def run_loop():
        """Baseline: one knn query per point."""
        nn = BruteForceNN(3)
        out = []
        for i in range(n):
            out.append(nn.knn(pts[i], k))
            nn.add(int(ids[i]), pts[i])
        return out

    def run_block():
        """Vectorised: blocked queries against the growing structure."""
        nn = BruteForceNN(3)
        out = []
        for lo in range(0, n, 64):
            out.extend(nn.knn_block_growing(ids[lo : lo + 64], pts[lo : lo + 64], k))
        return out

    before_s, ref = _best_of(params["repeats"], run_loop)
    after_s, fast = _best_of(params["repeats"], run_block)
    if ref != fast:
        raise AssertionError("knn_block_growing diverged from the query/insert loop")
    return {
        "n_points": n,
        "k": k,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
    }


def _query_setup(params: dict):
    """A built roadmap plus a fixed batch of (start, goal) queries, shared
    by the query-serving benchmarks."""
    cs = _cspace()
    prm = PRM(cs, k=6)
    rmap = prm.build(params["query_vertices"], np.random.default_rng(_SEED)).roadmap
    rng = np.random.default_rng(_SEED + 1)
    lo, hi = cs.bounds.lo, cs.bounds.hi
    queries = [
        (rng.uniform(lo, hi), rng.uniform(lo, hi))
        for _ in range(params["query_count"])
    ]
    return cs, rmap, queries


def _query_results_equal(ref, fast) -> bool:
    """Exact comparison of two lists of ``QueryResult | None``."""
    if len(ref) != len(fast):
        return False
    for a, b in zip(ref, fast):
        if (a is None) != (b is None):
            return False
        if a is None:
            continue
        if a.path_vertices != b.path_vertices or a.length != b.length:
            return False
        if not np.array_equal(a.path_configs, b.path_configs):
            return False
    return True


def bench_query_single(params: dict) -> dict:
    """Per-query serving: ``RoadmapQuery.solve`` (rebuilds the NN index and
    mutates the roadmap per call) vs ``QueryEngine.solve`` over a frozen
    snapshot; answers asserted path-exact."""
    cs, rmap, queries = _query_setup(params)

    def run_ref():
        """Baseline: stateless per-query solve."""
        rq = RoadmapQuery(cs, k=8)
        return [rq.solve(rmap, s, g) for s, g in queries]

    def run_engine():
        """Amortised: one engine, per-query solve calls."""
        eng = QueryEngine(cs, rmap, k=8)
        return [eng.solve(s, g) for s, g in queries]

    before_s, ref = _best_of(params["repeats"], run_ref)
    after_s, fast = _best_of(params["repeats"], run_engine)
    paths_equal = _query_results_equal(ref, fast)
    if not paths_equal:
        raise AssertionError("QueryEngine.solve diverged from RoadmapQuery.solve")
    return {
        "n_vertices": params["query_vertices"],
        "n_queries": len(queries),
        "solved": sum(r is not None for r in ref),
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "paths_equal": paths_equal,
    }


def bench_query_batch(params: dict) -> dict:
    """Batched serving: a per-query ``RoadmapQuery.solve`` loop vs one
    ``QueryEngine.solve_many`` call (vectorised validity, batched k-NN,
    one local-planning batch); answers asserted path-exact."""
    cs, rmap, queries = _query_setup(params)

    def run_ref():
        """Baseline: the naive serving loop."""
        rq = RoadmapQuery(cs, k=8)
        return [rq.solve(rmap, s, g) for s, g in queries]

    def run_batch():
        """Amortised + batched: one solve_many call."""
        eng = QueryEngine(cs, rmap, k=8)
        return eng.solve_many(queries).results

    before_s, ref = _best_of(params["repeats"], run_ref)
    after_s, fast = _best_of(params["repeats"], run_batch)
    paths_equal = _query_results_equal(ref, fast)
    if not paths_equal:
        raise AssertionError("solve_many diverged from the per-query reference")
    return {
        "n_vertices": params["query_vertices"],
        "n_queries": len(queries),
        "solved": sum(r is not None for r in ref),
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "paths_equal": paths_equal,
    }


def bench_knn_scaling(params: dict) -> dict:
    """Brute-force vs kd-tree k-NN at serving scale (n large enough that
    the tree's sublinear search wins); neighbour lists asserted identical,
    canonical tie-break included."""
    n = params["knn_scale_points"]
    q = params["knn_scale_queries"]
    k = 8
    rng = np.random.default_rng(_SEED)
    pts = rng.uniform(0.0, 10.0, size=(n, 3))
    ids = np.arange(n, dtype=np.int64)
    queries = rng.uniform(0.0, 10.0, size=(q, 3))

    brute = BruteForceNN(3)
    brute.add_batch(ids, pts)
    t0 = time.perf_counter()
    kd = KDTreeNN(3)
    kd.add_batch(ids, pts)
    build_s = time.perf_counter() - t0

    def run_brute():
        """Baseline: O(n) scan per query."""
        return [brute.knn(p, k) for p in queries]

    def run_kd():
        """Sublinear: kd-tree descent with deferred far-subtree pruning."""
        return [kd.knn(p, k) for p in queries]

    before_s, ref = _best_of(params["repeats"], run_brute)
    after_s, fast = _best_of(params["repeats"], run_kd)
    neighbors_equal = ref == fast
    if not neighbors_equal:
        raise AssertionError("kd-tree neighbours diverged from brute force")
    return {
        "n_points": n,
        "n_queries": q,
        "k": k,
        "kd_build_s": build_s,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "neighbors_equal": neighbors_equal,
    }


def _pool_task(task_id: int) -> float:
    """A deterministic CPU-bound unit of regional work (module level so the
    process backend can pickle it).  ``np.sin`` releases the GIL, so the
    thread backend can scale where cores are available."""
    rng = np.random.default_rng(task_id)
    a = rng.uniform(-1.0, 1.0, size=50_000)
    total = 0.0
    for _ in range(6):
        total += float(np.sin(a).sum())
        a = a * 1.0000001
    return total


def bench_pool_scaling(params: dict) -> dict:
    """Thread-pool wall time at 1, 2, and 4 workers on identical tasks.

    On a single-core machine the curve is flat — the interesting signal
    there is that dispatch overhead stays negligible; ``cpu_count`` is
    recorded so readers can interpret the numbers.
    """
    tasks = list(range(params["pool_tasks"]))
    times = {}
    last_pool = None
    for workers in (1, 2, 4):
        wall, last_pool = _best_of(
            params["repeats"],
            lambda w=workers: run_tasks_parallel(_pool_task, tasks, workers=w, backend="thread"),
        )
        times[str(workers)] = wall
    cpu_count = os.cpu_count()
    # A ~1.0 "speedup" on a single-core runner is noise, not a regression
    # signal — report null there so diffs against multi-core baselines
    # don't flag it.
    speedup = times["1"] / times["4"] if cpu_count is not None and cpu_count > 1 else None
    d = last_pool.dispatch
    return {
        "n_tasks": len(tasks),
        "cpu_count": cpu_count,
        "wall_s_by_workers": times,
        "speedup_4w": speedup,
        "_meta_extra": {
            "chunk_policy": d.chunk_policy,
            "chunks_issued": d.chunks_issued,
            "bytes_shipped": d.context_bytes + d.task_bytes,
        },
    }


def _skew_task(big_ids: frozenset, big_s: float, tid: int) -> int:
    """A task stream with a heavy tail: most ids return immediately, the
    few in ``big_ids`` sleep (releasing the GIL, so thread workers overlap
    them).  Module level so the process backend could pickle it too."""
    if tid in big_ids:
        time.sleep(big_s)
    return tid * 3 + 1


def bench_pool_dispatch_overhead(params: dict) -> dict:
    """Chunk policies on a skewed tiny-task workload: a long run of
    near-zero tasks with a few heavy ones at the tail.

    Fixed chunking faces a dilemma this shape makes stark: big chunks
    clump the heavy tail onto one worker (serialising it), chunksize=1
    pays one pool submission per tiny task.  The "guided" policy starts
    with large chunks and decays to singletons, so the tail is balanced
    AND dispatch count stays low — at medium scale it must beat the best
    fixed setting.  Every policy's result dict is asserted identical to
    the chunksize=1 oracle.
    """
    n_tiny, n_big = params["dispatch_tiny"], params["dispatch_big"]
    big_s = params["dispatch_big_s"]
    n = n_tiny + n_big
    tasks = list(range(n))
    big_ids = frozenset(range(n_tiny, n))
    task = partial(_skew_task, big_ids, big_s)
    workers = 4
    weights = {tid: big_s if tid in big_ids else 1e-4 for tid in tasks}

    oracle = run_tasks_parallel(task, tasks, workers=workers, backend="thread")
    walls = {}
    results_equal = True
    guided_dispatch = None
    sweep = [("fixed-1", 1, None), ("fixed-8", 8, None), ("fixed-32", 32, None),
             ("fixed-64", 64, None), ("guided", "guided", None),
             ("weighted", "weighted", weights)]
    for label, cs, tw in sweep:
        wall, pool = _best_of(
            params["repeats"],
            lambda c=cs, w=tw: run_tasks_parallel(
                task, tasks, workers=workers, backend="thread", chunksize=c,
                task_weights=w,
            ),
        )
        walls[label] = wall
        results_equal = results_equal and pool.results == oracle.results
        if label == "guided":
            guided_dispatch = pool.dispatch
    if not results_equal:
        raise AssertionError("chunk policies diverged from the chunksize=1 oracle")
    fixed = {k: v for k, v in walls.items() if k.startswith("fixed")}
    best_fixed = min(fixed, key=fixed.get)
    return {
        "n_tasks": n,
        "n_big": n_big,
        "big_task_s": big_s,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "wall_s_by_policy": walls,
        "best_fixed": best_fixed,
        "best_fixed_s": fixed[best_fixed],
        "guided_s": walls["guided"],
        "guided_vs_best_fixed": fixed[best_fixed] / walls["guided"],
        "results_equal": results_equal,
        "_meta_extra": {
            "chunk_policy": "guided",
            "chunks_issued": guided_dispatch.chunks_issued,
            "bytes_shipped": guided_dispatch.context_bytes + guided_dispatch.task_bytes,
        },
    }


def bench_prm_build_process_shm(params: dict) -> dict:
    """Shared-memory vs pickled data plane for process-backend planning on
    a large scene (a ``shelf_warehouse`` with 20k obstacles at medium),
    under the bit-exact ``bvh`` kernel backend so context transfer — not
    collision arithmetic — dominates the wall time.

    Both planes run the identical plan; "pickle" serialises the whole
    planning closure (environment included) and ships it to workers,
    "shm" publishes the obstacle arrays once as a POSIX shared-memory
    segment that workers map zero-copy and rebuild the closure from.
    Merged edges, planner stats, and collision counters must be
    bit-identical; at medium scale shm must be >= 1.5x faster.
    """
    from ..api import plan
    from ..geometry.scenarios import shelf_warehouse
    from ..spec import ExecutionPolicy, WorkloadSpec

    n_obs = params["shm_obstacles"]
    env = shelf_warehouse(n_obstacles=n_obs, seed=_SEED)

    def run(plane: str):
        wl = WorkloadSpec(
            environment=env, planner="prm", num_regions=params["shm_regions"],
            samples_per_region=params["shm_samples"], seed=_SEED,
        )
        # The bvh backend keeps per-check compute near O(log n), so the
        # row measures context transfer rather than collision arithmetic
        # (both planes run the identical bit-exact backend).
        ex = ExecutionPolicy(
            mode="local", backend="process", workers=2, data_plane=plane,
            kernel_backend="bvh",
        )
        return plan(wl, execution=ex)

    # Interleave the planes rather than timing one block after the other:
    # machine-state drift (CPU frequency, a forked parent's heap growing
    # over a long suite run) then lands on both sides of the ratio, and
    # min-of-N recovers each plane's fast-phase time.
    repeats = min(params["repeats"], 5)
    before_s = after_s = float("inf")
    ref = fast = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        ref = run("pickle")
        before_s = min(before_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fast = run("shm")
        after_s = min(after_s, time.perf_counter() - t0)

    edges_equal = sorted(ref.roadmap.edges()) == sorted(fast.roadmap.edges())
    stats_equal = ref.planner_stats == fast.planner_stats
    counters_equal = ref.local_counters == fast.local_counters
    if not (edges_equal and stats_equal and counters_equal):
        raise AssertionError("shm data plane diverged from the pickle plane")
    d = fast.dispatch
    return {
        "environment": "shelf-warehouse",
        "n_obstacles": n_obs,
        "n_regions": params["shm_regions"],
        "samples_per_region": params["shm_samples"],
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "edges_equal": edges_equal,
        "stats_equal": stats_equal,
        "counters_equal": counters_equal,
        "pickle_context_bytes": ref.dispatch.context_bytes,
        "shm_context_bytes": d.context_bytes,
        "shm_segment_bytes": d.shm_bytes,
        "shm_attaches": d.shm_attaches,
        "_meta_extra": {
            "chunk_policy": d.chunk_policy,
            "chunks_issued": d.chunks_issued,
            "bytes_shipped": d.context_bytes + d.task_bytes,
        },
    }


def bench_query_batch_process_shm(params: dict) -> dict:
    """Process-worker query serving through the shared-memory frozen
    roadmap vs the pickled closure; answers asserted path-exact.  No
    speedup floor — the interesting gate is parity plus the per-chunk
    traffic collapse recorded in the meta."""
    from ..spec import ExecutionPolicy

    cs, rmap, queries = _query_setup(params)
    eng = QueryEngine(cs, rmap, k=8)

    def run(plane: str):
        ex = ExecutionPolicy(
            mode="local", backend="process", workers=2, data_plane=plane
        )
        return eng.solve_many(queries, execution=ex)

    repeats = min(params["repeats"], 3)
    before_s, ref = _best_of(repeats, lambda: run("pickle"))
    after_s, fast = _best_of(repeats, lambda: run("shm"))
    paths_equal = _query_results_equal(ref.results, fast.results)
    if not paths_equal:
        raise AssertionError("shm-plane query serving diverged from pickle plane")
    d = fast.dispatch
    return {
        "n_vertices": params["query_vertices"],
        "n_queries": len(queries),
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "paths_equal": paths_equal,
        "shm_segment_bytes": d.shm_bytes,
        "shm_attaches": d.shm_attaches,
        "_meta_extra": {
            "chunk_policy": d.chunk_policy,
            "chunks_issued": d.chunks_issued,
            "bytes_shipped": d.context_bytes + d.task_bytes,
        },
    }


def bench_kernel_collision(params: dict) -> dict:
    """float64 reference vs float32 blocked kernels on point and segment
    collision queries over the mixed-30 scene.

    Equivalence gate (statistical, not bit-exact): verdicts must be
    identical on every *stable* query — one whose reference verdict
    survives a ``_STABILITY_EPS`` perturbation of all obstacle faces.
    Queries closer than eps to a decision boundary may flip under
    float32 rounding, and the stable fraction is recorded so a sudden
    drop (a backend misclassifying far from boundaries) is visible.
    """
    n_pts = params["kernel_points"]
    n_seg = params["kernel_segments"]
    env = environments.by_name(_KERNEL_ENV)
    data = env.kernel_data()
    ref = get_backend("reference")
    fast = get_backend("fast32")
    rng = np.random.default_rng(_SEED)
    lo, hi = env.bounds.lo, env.bounds.hi
    pts = rng.uniform(lo, hi, size=(n_pts, env.bounds.dim))
    p = rng.uniform(lo, hi, size=(n_seg, env.bounds.dim))
    q = np.clip(p + rng.uniform(-2.0, 2.0, size=p.shape), lo, hi)

    def run(backend):
        """One timed pass of both kernel entry points."""
        return backend.points_free(data, pts), backend.segments_free(data, p, q)

    before_s, (rp, rs) = _best_of(params["repeats"], lambda: run(ref))
    after_s, (fp, fs) = _best_of(params["repeats"], lambda: run(fast))

    plus, minus = data.inflated(_STABILITY_EPS), data.inflated(-_STABILITY_EPS)
    stable_p = ref.points_free(plus, pts) == ref.points_free(minus, pts)
    stable_s = ref.segments_free(plus, p, q) == ref.segments_free(minus, p, q)
    verdicts_equal = bool(
        np.array_equal(rp[stable_p], fp[stable_p])
        and np.array_equal(rs[stable_s], fs[stable_s])
    )
    if not verdicts_equal:
        raise AssertionError("fast32 collision verdicts diverged on stable queries")
    return {
        "environment": _KERNEL_ENV,
        "n_points": n_pts,
        "n_segments": n_seg,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "verdicts_equal_stable": verdicts_equal,
        "stable_fraction": float((stable_p.sum() + stable_s.sum()) / (n_pts + n_seg)),
        "_kernel_backend": "fast32",
    }


def bench_kernel_knn(params: dict) -> dict:
    """float64 reference vs float32 tiled ``knn_block_min``.

    Gates: distances within 1e-4 relative everywhere; neighbour ids
    identical on every row whose reference k-th/(k+1)-th distance gap is
    clear of float32 rounding (rows with a near-tie straddling the cut
    may legitimately pick the other twin).
    """
    n = params["kernel_knn_stored"]
    m = params["kernel_knn_queries"]
    k = 8
    rng = np.random.default_rng(_SEED)
    stored = rng.uniform(0.0, 10.0, size=(n, 3))
    queries = rng.uniform(0.0, 10.0, size=(m, 3))
    ref = get_backend("reference")
    fast = get_backend("fast32")

    before_s, (ri, rd) = _best_of(
        params["repeats"], lambda: ref.knn_block_min(stored, queries, k)
    )
    after_s, (fi, fd) = _best_of(
        params["repeats"], lambda: fast.knn_block_min(stored, queries, k)
    )

    dists_close = bool(np.allclose(rd, fd, rtol=1e-4, atol=1e-9))
    _ri1, rd1 = ref.knn_block_min(stored, queries, k + 1)
    gap = rd1[:, k] - rd1[:, k - 1]
    tiefree = gap > 1e-4 * np.maximum(rd1[:, k], 1.0)
    ids_equal = bool(np.array_equal(ri[tiefree], fi[tiefree]))
    if not (dists_close and ids_equal):
        raise AssertionError("fast32 knn diverged from reference beyond tolerance")
    return {
        "n_stored": n,
        "n_queries": m,
        "k": k,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "dists_close": dists_close,
        "ids_equal_tiefree": ids_equal,
        "tiefree_fraction": float(tiefree.mean()),
        "_kernel_backend": "fast32",
    }


def _perturbed_env(env, margin: float):
    """The ``EnvKernelData.inflated`` perturbation as a full Environment:
    every obstacle grown by ``margin`` (shrunk when negative), free
    bounds shrunk by the same amount."""
    from ..geometry.primitives import AABB

    boxes = [AABB(o.lo - margin, o.hi + margin) for o in env.obstacles]
    bounds = AABB(env.bounds.lo + margin, env.bounds.hi - margin)
    return type(env)(bounds, boxes)


def bench_kernel_local_plan(params: dict) -> dict:
    """``StraightLinePlanner.batch_pairs`` with the reference backend vs a
    per-call ``kernels="fast32"`` override on the mixed-30 c-space.

    Check counts are distance-derived in float64 on the planner side, so
    they must be *identical* under any backend; segment verdicts follow
    the stable-query contract (perturbed-Environment guard).
    """
    m = params["kernel_lp_pairs"]
    env = environments.by_name(_KERNEL_ENV)
    cs = EuclideanCSpace(env)
    rng = np.random.default_rng(_SEED)
    lo, hi = cs.bounds.lo, cs.bounds.hi
    starts = rng.uniform(lo, hi, size=(m, cs.dim))
    ends = np.clip(starts + rng.uniform(-1.5, 1.5, size=(m, cs.dim)), lo, hi)
    lp_ref = StraightLinePlanner(resolution=0.25)
    lp_fast = StraightLinePlanner(resolution=0.25, kernels="fast32")

    before_s, (ok0, ch0, len0) = _best_of(
        params["repeats"], lambda: lp_ref.batch_pairs(cs, starts, ends)
    )
    after_s, (ok1, ch1, len1) = _best_of(
        params["repeats"], lambda: lp_fast.batch_pairs(cs, starts, ends)
    )

    checks_equal = bool(ch0 == ch1 and np.array_equal(len0, len1))
    csp = EuclideanCSpace(_perturbed_env(env, _STABILITY_EPS))
    csm = EuclideanCSpace(_perturbed_env(env, -_STABILITY_EPS))
    okp, _, _ = lp_ref.batch_pairs(csp, starts, ends)
    okm, _, _ = lp_ref.batch_pairs(csm, starts, ends)
    stable = okp == okm
    verdicts_equal = bool(np.array_equal(ok0[stable], ok1[stable]))
    if not (checks_equal and verdicts_equal):
        raise AssertionError(
            "fast32 local planning diverged: "
            f"checks_equal={checks_equal} verdicts_equal={verdicts_equal}"
        )
    return {
        "environment": _KERNEL_ENV,
        "n_pairs": m,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "checks_equal": checks_equal,
        "verdicts_equal_stable": verdicts_equal,
        "stable_fraction": float(stable.mean()),
        "_kernel_backend": "fast32",
    }


def bench_prm_build_fast32(params: dict) -> dict:
    """End-to-end PRM build on mixed-30 under the reference backend vs
    ``fast32`` selected through ``cspace.set_kernel_backend``.

    The roadmaps need not be bit-identical (float32 verdicts may differ
    inside the eps boundary band), so the gate is behavioural: a frozen
    batch of queries answered by the *reference* QueryEngine over each
    roadmap must have the same success set and path lengths within 1e-4
    relative.
    """
    n = params["kernel_prm_samples"]
    nq = params["kernel_prm_queries"]

    def build(backend):
        """One timed PRM build under ``backend`` (None = reference default)."""
        cs = EuclideanCSpace(environments.by_name(_KERNEL_ENV))
        if backend is not None:
            cs.set_kernel_backend(backend)
        prm = PRM(cs, k=6, batched=True)
        return prm.build(n, np.random.default_rng(_SEED)).roadmap

    before_s, rmap_ref = _best_of(params["repeats"], lambda: build(None))
    after_s, rmap_fast = _best_of(params["repeats"], lambda: build("fast32"))

    cs = EuclideanCSpace(environments.by_name(_KERNEL_ENV))
    rng = np.random.default_rng(_SEED + 1)
    lo, hi = cs.bounds.lo, cs.bounds.hi
    queries = [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(nq)]
    res_ref = QueryEngine(cs, rmap_ref, k=8).solve_many(queries).results
    res_fast = QueryEngine(cs, rmap_fast, k=8).solve_many(queries).results
    success_equal = all((a is None) == (b is None) for a, b in zip(res_ref, res_fast))
    lengths_close = success_equal and all(
        a is None or abs(a.length - b.length) <= 1e-4 * max(a.length, 1.0)
        for a, b in zip(res_ref, res_fast)
    )
    if not (success_equal and lengths_close):
        raise AssertionError(
            "fast32 PRM build answered the frozen query batch differently: "
            f"success_equal={success_equal} lengths_close={lengths_close}"
        )
    return {
        "environment": _KERNEL_ENV,
        "n_samples": n,
        "n_queries": nq,
        "solved": sum(r is not None for r in res_ref),
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "success_equal": success_equal,
        "lengths_close": lengths_close,
        "_kernel_backend": "fast32",
    }


def bench_bvh_collision_scaling(params: dict) -> dict:
    """Brute-force reference vs BVH-culled collision kernels on procedural
    warehouse scenes across obstacle counts.

    Unlike the fast32 gates this one is **bit-exact**: the ``bvh`` backend
    culls with a conservative tree but decides with the reference
    expressions, so verdicts must be *equal*, not statistically close.
    Query counts shrink as obstacle counts grow because the reference
    side materialises ``(n_queries, n_obstacles, dim)`` temporaries.
    """
    from ..geometry.scenarios import shelf_warehouse

    ref = get_backend("reference")
    bvh = get_backend("bvh")
    rows = {}
    all_equal = True
    for n in params["bvh_sizes"]:
        n_pts = int(min(2000, max(400, 10_000_000 // n)))
        n_seg = int(min(1000, max(64, 4_000_000 // n)))
        env = shelf_warehouse(n, seed=_SEED)
        data = env.kernel_data()
        rng = np.random.default_rng(_SEED)
        lo, hi = env.bounds.lo, env.bounds.hi
        pts = rng.uniform(lo, hi, size=(n_pts, 3))
        p = rng.uniform(lo, hi, size=(n_seg, 3))
        q = np.clip(p + rng.uniform(-3.0, 3.0, size=p.shape), lo, hi)

        t0 = time.perf_counter()
        from ..kernels.bvh_backend import _box_tree

        _box_tree(data)  # pay the build once, outside the timed region
        build_s = time.perf_counter() - t0

        repeats = params["repeats"] if n <= 1000 else min(params["repeats"], 2)
        before_s, (rp, rs) = _best_of(
            repeats, lambda: (ref.points_free(data, pts), ref.segments_free(data, p, q))
        )
        after_s, (bp, bs) = _best_of(
            repeats, lambda: (bvh.points_free(data, pts), bvh.segments_free(data, p, q))
        )
        verdicts_equal = bool(np.array_equal(rp, bp) and np.array_equal(rs, bs))
        if not verdicts_equal:
            raise AssertionError(
                f"bvh collision verdicts diverged from reference at n={n} "
                "(the bvh contract is bit-exact, not statistical)"
            )
        all_equal = all_equal and verdicts_equal
        rows[str(n)] = {
            "n_obstacles": n,
            "n_points": n_pts,
            "n_segments": n_seg,
            "build_s": build_s,
            "before_s": before_s,
            "after_s": after_s,
            "speedup": before_s / after_s,
            "verdicts_equal": verdicts_equal,
        }
    return {
        "scenario": "warehouse",
        "sizes": list(params["bvh_sizes"]),
        "rows": rows,
        "verdicts_equal": all_equal,
        "_kernel_backend": "bvh",
    }


def bench_prm_build_bvh(params: dict) -> dict:
    """End-to-end PRM build on a dense warehouse scene: reference backend
    vs ``bvh`` selected through ``cspace.set_kernel_backend``.

    Where ``prm_build_fast32`` settles for behavioural equivalence
    (float32 verdicts may flip in the eps band), this gate is the full
    exact-parity surface of the batched-vs-sequential benches: stats,
    counters, and edges must be identical, because the bvh backend is
    bit-exact by construction.
    """
    from ..geometry.scenarios import shelf_warehouse

    n_obs = params["bvh_prm_obstacles"]
    n = params["bvh_prm_samples"]

    def build(backend):
        """One timed PRM build under ``backend`` (None = reference default)."""
        cs = EuclideanCSpace(shelf_warehouse(n_obs, seed=_SEED))
        if backend is not None:
            cs.set_kernel_backend(backend)
        prm = PRM(cs, k=6, batched=True)
        res = prm.build(n, np.random.default_rng(_SEED))
        counters = (cs.env.counters.point_checks, cs.env.counters.segment_checks)
        edges = sorted((min(u, v), max(u, v), w) for u, v, w in res.roadmap.edges())
        return asdict(res.stats), counters, edges

    repeats = min(params["repeats"], 2)
    before_s, ref = _best_of(repeats, lambda: build(None))
    after_s, fast = _best_of(repeats, lambda: build("bvh"))
    stats_equal = ref[0] == fast[0]
    counters_equal = ref[1] == fast[1]
    edges_equal = ref[2] == fast[2]
    if not (stats_equal and counters_equal and edges_equal):
        raise AssertionError(
            "bvh PRM build diverged from the reference backend: "
            f"stats_equal={stats_equal} counters_equal={counters_equal} "
            f"edges_equal={edges_equal}"
        )
    return {
        "environment": f"warehouse-{n_obs}",
        "n_obstacles": n_obs,
        "n_samples": n,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "stats_equal": stats_equal,
        "counters_equal": counters_equal,
        "edges_equal": edges_equal,
        "_kernel_backend": "bvh",
    }


def _nn_stream(factory, pts: np.ndarray):
    """The RRT inner-loop NN load with the planning stripped out: query
    each point's single nearest neighbour against the tree so far, then
    insert it — the exact query-then-insert interleaving ``RRT.grow``
    produces.  Returns (answers, final KnnStats)."""
    nn = factory(pts.shape[1])
    nn.add(0, pts[0])
    out = []
    for i in range(1, len(pts)):
        out.append(nn.knn(pts[i], 1))
        nn.add(i, pts[i])
    return out, nn.stats


def bench_rrt_nn_scaling(params: dict) -> dict:
    """Growing-tree nearest-neighbour streams: brute-force scan vs the
    incremental kd-ladder (Bentley-Saxe logarithmic rebuild) across tree
    sizes.

    Answer parity is exact, not statistical: the ladder inherits the
    canonical ``(distance, insertion order)`` tie-break, so the
    neighbour streams must be identical element for element.  Each row
    also records the distance-eval ledger — the brute scan's quadratic
    count, the ladder's count, and the evals the work model no longer
    charges — because virtual time, not wall time, is this repo's metric
    of record."""
    rows = {}
    all_equal = True
    for n in params["incnn_sizes"]:
        rng = np.random.default_rng(_SEED)
        pts = rng.uniform(-10.0, 10.0, size=(n, 3))
        repeats = params["repeats"] if n < 20000 else min(params["repeats"], 2)
        before_s, (ref, ref_stats) = _best_of(
            repeats, lambda: _nn_stream(BruteForceNN, pts)
        )
        after_s, (fast, fast_stats) = _best_of(
            repeats, lambda: _nn_stream(IncrementalNN, pts)
        )
        neighbors_equal = ref == fast
        if not neighbors_equal:
            raise AssertionError(
                f"incremental NN stream diverged from brute force at n={n} "
                "(the ladder contract is bit-exact, not approximate)"
            )
        all_equal = all_equal and neighbors_equal
        rows[str(n)] = {
            "n_points": n,
            "before_s": before_s,
            "after_s": after_s,
            "speedup": before_s / after_s,
            "neighbors_equal": neighbors_equal,
            "nn_distance_evals_before": int(ref_stats.distance_evals),
            "nn_distance_evals_after": int(fast_stats.distance_evals),
            "evals_saved": int(fast_stats.evals_saved),
            "rebuilds": int(fast_stats.rebuilds),
            "buffer_hits": int(fast_stats.buffer_hits),
        }
    return {
        "sizes": list(params["incnn_sizes"]),
        "rows": rows,
        "neighbors_equal": all_equal,
        "_meta_extra": {"nn_backend": "incremental"},
    }


#: PlannerStats fields that legitimately differ between NN backends: the
#: eval count is what the incremental ladder exists to shrink, and the
#: maintenance counters are zero everywhere but the ladder.
_NN_BACKEND_STATS = ("nn_distance_evals", "nn_rebuilds", "nn_buffer_hits", "nn_evals_saved")


def bench_rrt_build_incnn(params: dict) -> dict:
    """Batched RRT growth with the brute-force NN oracle vs the
    ``incremental`` kd-ladder backend, plus the NN phase in isolation at
    floor scale.

    The build gate is the strongest parity surface in the suite: edges
    (with exact float64 weights), parent pointers, collision counters,
    and every ``PlannerStats`` field outside the NN-backend group must
    be *identical* — the ladder answers every query bit-exactly, so
    swapping it in may not move a single sample.  Full-build wall time
    is recorded but roughly backend-neutral at this scale in pure
    python; the win the work model sees is the eval reduction
    (``nn_distance_evals`` before/after, recorded in the row meta).  The
    ``nn_phase_*`` fields time the growing query-then-insert stream
    alone at n>=20k, where the medium-scale ``--check`` floor applies."""
    n = params["incnn_rrt_nodes"]
    stream_n = params["incnn_stream_points"]

    def build(factory):
        """One timed batched RRT growth under the given NN factory."""
        cs = _cspace()
        rrt = RRT(cs, step_size=0.6, goal_bias=0.05, batched=True, nn_factory=factory)
        res = rrt.grow(np.full(cs.dim, -9.0), n, np.random.default_rng(_SEED))
        counters = (cs.env.counters.point_checks, cs.env.counters.segment_checks)
        edges = sorted((min(u, v), max(u, v), w) for u, v, w in res.tree.edges())
        return asdict(res.stats), counters, edges, dict(res.parents)

    def core(stats_dict):
        """Stats without the backend-dependent NN fields."""
        return {k: v for k, v in stats_dict.items() if k not in _NN_BACKEND_STATS}

    repeats = min(params["repeats"], 2)
    before_s, ref = _best_of(repeats, lambda: build(BruteForceNN))
    after_s, fast = _best_of(repeats, lambda: build(IncrementalNN))
    edges_equal = ref[2] == fast[2]
    parents_equal = ref[3] == fast[3]
    counters_equal = ref[1] == fast[1]
    stats_equal_core = core(ref[0]) == core(fast[0])
    if not (edges_equal and parents_equal and counters_equal and stats_equal_core):
        raise AssertionError(
            "incremental-NN RRT build diverged from the brute-force oracle: "
            f"edges_equal={edges_equal} parents_equal={parents_equal} "
            f"counters_equal={counters_equal} stats_equal_core={stats_equal_core}"
        )

    rng = np.random.default_rng(_SEED)
    pts = rng.uniform(-10.0, 10.0, size=(stream_n, 3))
    nn_before_s, (sref, _) = _best_of(repeats, lambda: _nn_stream(BruteForceNN, pts))
    nn_after_s, (sfast, _) = _best_of(repeats, lambda: _nn_stream(IncrementalNN, pts))
    if sref != sfast:
        raise AssertionError("incremental NN phase diverged from brute force")

    return {
        "n_nodes": n,
        "before_s": before_s,
        "after_s": after_s,
        "speedup": before_s / after_s,
        "edges_equal": edges_equal,
        "parents_equal": parents_equal,
        "counters_equal": counters_equal,
        "stats_equal_core": stats_equal_core,
        "nn_phase_points": stream_n,
        "nn_phase_before_s": nn_before_s,
        "nn_phase_after_s": nn_after_s,
        "nn_phase_speedup": nn_before_s / nn_after_s,
        "_meta_extra": {
            "nn_backend": "incremental",
            "nn_distance_evals_before": ref[0]["nn_distance_evals"],
            "nn_distance_evals_after": fast[0]["nn_distance_evals"],
            "nn_evals_saved": fast[0]["nn_evals_saved"],
            "nn_rebuilds": fast[0]["nn_rebuilds"],
            "nn_buffer_hits": fast[0]["nn_buffer_hits"],
        },
    }


_BENCHMARKS = {
    "prm_build_default_path": bench_prm_build,
    "rrt_build_default_path": bench_rrt_build,
    "rrt_radial_workload": bench_rrt_radial_workload,
    "batch_local_plan": bench_batch_local_plan,
    "knn": bench_knn,
    "query_single": bench_query_single,
    "query_batch": bench_query_batch,
    "knn_scaling": bench_knn_scaling,
    "pool_scaling": bench_pool_scaling,
    "kernel_collision": bench_kernel_collision,
    "kernel_knn": bench_kernel_knn,
    "kernel_local_plan": bench_kernel_local_plan,
    "prm_build_fast32": bench_prm_build_fast32,
    "bvh_collision_scaling": bench_bvh_collision_scaling,
    "prm_build_bvh": bench_prm_build_bvh,
    "rrt_nn_scaling": bench_rrt_nn_scaling,
    "rrt_build_incnn": bench_rrt_build_incnn,
    "pool_dispatch_overhead": bench_pool_dispatch_overhead,
    "prm_build_process_shm": bench_prm_build_process_shm,
    "query_batch_process_shm": bench_query_batch_process_shm,
}

#: Keys every benchmark entry must carry for the file to be well-formed.
_REQUIRED_FIELDS = {
    "prm_build_default_path": ("before_s", "after_s", "speedup", "stats_equal", "counters_equal"),
    "rrt_build_default_path": ("before_s", "after_s", "speedup", "stats_equal", "counters_equal"),
    "rrt_radial_workload": ("before_s", "after_s", "speedup", "stats_equal", "counters_equal"),
    "batch_local_plan": ("before_s", "after_s", "speedup"),
    "knn": ("before_s", "after_s", "speedup"),
    "query_single": ("before_s", "after_s", "speedup", "paths_equal"),
    "query_batch": ("before_s", "after_s", "speedup", "paths_equal"),
    "knn_scaling": ("before_s", "after_s", "speedup", "neighbors_equal"),
    "pool_scaling": ("wall_s_by_workers", "speedup_4w", "cpu_count"),
    "kernel_collision": ("before_s", "after_s", "speedup", "verdicts_equal_stable"),
    "kernel_knn": ("before_s", "after_s", "speedup", "dists_close", "ids_equal_tiefree"),
    "kernel_local_plan": ("before_s", "after_s", "speedup", "checks_equal", "verdicts_equal_stable"),
    "prm_build_fast32": ("before_s", "after_s", "speedup", "success_equal", "lengths_close"),
    "bvh_collision_scaling": ("sizes", "rows", "verdicts_equal"),
    "prm_build_bvh": ("before_s", "after_s", "speedup", "stats_equal", "counters_equal", "edges_equal"),
    "rrt_nn_scaling": ("sizes", "rows", "neighbors_equal"),
    "rrt_build_incnn": (
        "before_s", "after_s", "speedup", "edges_equal", "parents_equal",
        "counters_equal", "stats_equal_core", "nn_phase_speedup",
    ),
    "pool_dispatch_overhead": (
        "wall_s_by_policy", "best_fixed_s", "guided_s", "guided_vs_best_fixed",
        "results_equal",
    ),
    "prm_build_process_shm": (
        "before_s", "after_s", "speedup", "edges_equal", "stats_equal",
        "counters_equal", "n_obstacles",
    ),
    "query_batch_process_shm": ("before_s", "after_s", "speedup", "paths_equal"),
}

#: Parity flags that must not be false in a well-formed kernel row.
_KERNEL_PARITY_FLAGS = {
    "kernel_collision": ("verdicts_equal_stable",),
    "kernel_knn": ("dists_close", "ids_equal_tiefree"),
    "kernel_local_plan": ("checks_equal", "verdicts_equal_stable"),
    "prm_build_fast32": ("success_equal", "lengths_close"),
    "bvh_collision_scaling": ("verdicts_equal",),
    "prm_build_bvh": ("stats_equal", "counters_equal", "edges_equal"),
    "rrt_nn_scaling": ("neighbors_equal",),
    "rrt_build_incnn": ("edges_equal", "parents_equal", "counters_equal", "stats_equal_core"),
    "pool_dispatch_overhead": ("results_equal",),
    "prm_build_process_shm": ("edges_equal", "stats_equal", "counters_equal"),
    "query_batch_process_shm": ("paths_equal",),
}

#: Medium-scale speedup floor for the fast32 microbenches: below this the
#: float32 blocked layouts have regressed into pointlessness.
_KERNEL_SPEEDUP_FLOOR = 1.8

#: Medium-scale floor for the BVH at 10k warehouse obstacles — the
#: acceptance bar from the scaling work: a tree that can't beat the
#: brute-force scan 5x at 10^4 primitives isn't pulling its weight.
_BVH_SPEEDUP_FLOOR = 5.0

#: Medium-scale floor for the incremental kd-ladder on the growing
#: query-then-insert stream at 20k nodes: an insertion-friendly index
#: that can't halve the brute scan's wall time there isn't earning its
#: rebuild machinery.
_INCNN_SPEEDUP_FLOOR = 2.0

#: Medium-scale floor for the shared-memory data plane on the 10k-obstacle
#: warehouse: if mapping the scene zero-copy can't beat re-pickling it to
#: every worker by 1.5x, the plane isn't paying for its machinery.
_SHM_SPEEDUP_FLOOR = 1.5

#: Obstacle-count floor for the prm_build_process_shm scene at medium.
_SHM_OBSTACLE_FLOOR = 10_000


def run_suite(scale: str = "medium") -> dict:
    """Run every benchmark at ``scale`` and return the result payload."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    params = SCALES[scale]
    benchmarks = {}
    for name, fn in _BENCHMARKS.items():
        t0 = time.perf_counter()
        row = fn(params)
        # Every row records the runtime it was measured under: the active
        # kernel backend (the fast side for kernel comparisons, the
        # reference default everywhere else) and the numpy/numba versions.
        # Benchmarks can merge extra provenance (e.g. the NN backend and
        # its distance-eval ledger) via the "_meta_extra" key.
        row["meta"] = {
            "kernel_backend": row.pop("_kernel_backend", "reference"),
            "numpy": np.__version__,
            "numba": _numba_version(),
            **row.pop("_meta_extra", {}),
        }
        benchmarks[name] = row
        print(f"[perf] {name}: {time.perf_counter() - t0:.1f}s", file=sys.stderr)
    return {
        "suite": "repro-perf",
        "scale": scale,
        "environment": _ENV_NAME,
        "seed": _SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": _numba_version(),
        "benchmarks": benchmarks,
    }


def validate(payload: object) -> "list[str]":
    """Structural validation of a suite result; returns a list of problems
    (empty when well-formed)."""
    problems = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    if payload.get("suite") != "repro-perf":
        problems.append("missing or wrong 'suite' marker")
    if payload.get("scale") not in SCALES:
        problems.append(f"unknown scale {payload.get('scale')!r}")
    benches = payload.get("benchmarks")
    if not isinstance(benches, dict):
        return problems + ["'benchmarks' missing or not an object"]
    for name, fields in _REQUIRED_FIELDS.items():
        entry = benches.get(name)
        if not isinstance(entry, dict):
            problems.append(f"benchmark {name!r} missing")
            continue
        for f in fields:
            if f not in entry:
                problems.append(f"benchmark {name!r} missing field {f!r}")
        for f in ("before_s", "after_s", "speedup"):
            if f in entry and not (isinstance(entry[f], (int, float)) and entry[f] > 0):
                problems.append(f"benchmark {name!r} field {f!r} is not a positive number")
    for bench_name in ("prm_build_default_path", "rrt_build_default_path", "rrt_radial_workload"):
        parity = benches.get(bench_name, {})
        for f in ("stats_equal", "counters_equal", "edges_equal"):
            if parity.get(f) is False:
                problems.append(f"{bench_name} reports {f}=false")
    for bench_name in ("query_single", "query_batch"):
        if benches.get(bench_name, {}).get("paths_equal") is False:
            problems.append(f"{bench_name} reports paths_equal=false")
    if benches.get("knn_scaling", {}).get("neighbors_equal") is False:
        problems.append("knn_scaling reports neighbors_equal=false")
    for bench_name, flags in _KERNEL_PARITY_FLAGS.items():
        entry = benches.get(bench_name, {})
        for f in flags:
            if entry.get(f) is False:
                problems.append(f"{bench_name} reports {f}=false")
    for name in _REQUIRED_FIELDS:
        entry = benches.get(name)
        if isinstance(entry, dict):
            meta = entry.get("meta")
            if not isinstance(meta, dict) or not {"kernel_backend", "numpy", "numba"} <= set(meta):
                problems.append(
                    f"benchmark {name!r} missing runtime meta (kernel_backend/numpy/numba)"
                )
    scaling = benches.get("bvh_collision_scaling", {})
    rows = scaling.get("rows")
    if isinstance(rows, dict):
        for size, row in rows.items():
            if not isinstance(row, dict):
                problems.append(f"bvh_collision_scaling row {size!r} is not an object")
                continue
            for f in ("before_s", "after_s", "speedup", "build_s"):
                if not (isinstance(row.get(f), (int, float)) and row[f] > 0):
                    problems.append(
                        f"bvh_collision_scaling row {size!r} field {f!r} "
                        "is not a positive number"
                    )
            if row.get("verdicts_equal") is False:
                problems.append(
                    f"bvh_collision_scaling row {size!r} reports verdicts_equal=false"
                )
    nn_rows = benches.get("rrt_nn_scaling", {}).get("rows")
    if isinstance(nn_rows, dict):
        for size, row in nn_rows.items():
            if not isinstance(row, dict):
                problems.append(f"rrt_nn_scaling row {size!r} is not an object")
                continue
            for f in ("before_s", "after_s", "speedup"):
                if not (isinstance(row.get(f), (int, float)) and row[f] > 0):
                    problems.append(
                        f"rrt_nn_scaling row {size!r} field {f!r} "
                        "is not a positive number"
                    )
            if row.get("neighbors_equal") is False:
                problems.append(
                    f"rrt_nn_scaling row {size!r} reports neighbors_equal=false"
                )
    if payload.get("scale") == "medium":
        for bench_name in ("kernel_collision", "kernel_knn"):
            sp = benches.get(bench_name, {}).get("speedup")
            if isinstance(sp, (int, float)) and sp < _KERNEL_SPEEDUP_FLOOR:
                problems.append(
                    f"{bench_name} speedup {sp:.2f}x is below the "
                    f"{_KERNEL_SPEEDUP_FLOOR}x fast32 floor"
                )
        sp = rows.get("10000", {}).get("speedup") if isinstance(rows, dict) else None
        if not isinstance(sp, (int, float)):
            problems.append("bvh_collision_scaling is missing the 10000-obstacle row")
        elif sp < _BVH_SPEEDUP_FLOOR:
            problems.append(
                f"bvh_collision_scaling speedup {sp:.2f}x at 10k obstacles is "
                f"below the {_BVH_SPEEDUP_FLOOR}x bvh floor"
            )
        sp = nn_rows.get("20000", {}).get("speedup") if isinstance(nn_rows, dict) else None
        if not isinstance(sp, (int, float)):
            problems.append("rrt_nn_scaling is missing the 20000-point row")
        elif sp < _INCNN_SPEEDUP_FLOOR:
            problems.append(
                f"rrt_nn_scaling speedup {sp:.2f}x at 20k points is below "
                f"the {_INCNN_SPEEDUP_FLOOR}x incremental-NN floor"
            )
        incnn = benches.get("rrt_build_incnn", {})
        sp = incnn.get("nn_phase_speedup")
        npts = incnn.get("nn_phase_points")
        if not isinstance(sp, (int, float)):
            problems.append("rrt_build_incnn is missing nn_phase_speedup")
        elif not (isinstance(npts, int) and npts >= 20000):
            problems.append(
                "rrt_build_incnn nn_phase_points is below the 20k floor scale"
            )
        elif sp < _INCNN_SPEEDUP_FLOOR:
            problems.append(
                f"rrt_build_incnn NN-phase speedup {sp:.2f}x at n={npts} is "
                f"below the {_INCNN_SPEEDUP_FLOOR}x incremental-NN floor"
            )
        shm_row = benches.get("prm_build_process_shm", {})
        sp = shm_row.get("speedup")
        n_obs = shm_row.get("n_obstacles")
        if not isinstance(sp, (int, float)):
            problems.append("prm_build_process_shm is missing speedup")
        elif not (isinstance(n_obs, int) and n_obs >= _SHM_OBSTACLE_FLOOR):
            problems.append(
                f"prm_build_process_shm scene has {n_obs} obstacles, below "
                f"the {_SHM_OBSTACLE_FLOOR} floor scale"
            )
        elif sp < _SHM_SPEEDUP_FLOOR:
            problems.append(
                f"prm_build_process_shm speedup {sp:.2f}x is below the "
                f"{_SHM_SPEEDUP_FLOOR}x shared-memory data-plane floor"
            )
        disp = benches.get("pool_dispatch_overhead", {})
        ratio = disp.get("guided_vs_best_fixed")
        if not isinstance(ratio, (int, float)):
            problems.append("pool_dispatch_overhead is missing guided_vs_best_fixed")
        elif ratio <= 1.0:
            problems.append(
                f"pool_dispatch_overhead: guided is {ratio:.2f}x the best "
                f"fixed chunksize ({disp.get('best_fixed')}) — adaptive "
                "chunking must win on the skewed workload"
            )
    # Serve rows are optional extras merged in by `python -m repro.bench
    # serve`; when present they must be well-formed and parity-clean.
    from .serve import validate_serve_rows

    problems.extend(validate_serve_rows(benches))
    return problems


def main(argv: "list[str]") -> int:
    """CLI entry point: run the suite or ``--check`` an existing file."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="medium")
    parser.add_argument("--output", default="BENCH_perf.json")
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="validate an existing result file instead of running benchmarks",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            with open(args.check) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"perf check: cannot read {args.check}: {exc}", file=sys.stderr)
            return 2
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"perf check: {p}", file=sys.stderr)
            return 1
        print(f"perf check: {args.check} OK")
        return 0

    payload = run_suite(args.scale)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    prm = payload["benchmarks"]["prm_build_default_path"]
    rrt = payload["benchmarks"]["rrt_build_default_path"]
    qb = payload["benchmarks"]["query_batch"]
    kc = payload["benchmarks"]["kernel_collision"]
    kn = payload["benchmarks"]["kernel_knn"]
    incnn = payload["benchmarks"]["rrt_build_incnn"]
    bvh_rows = payload["benchmarks"]["bvh_collision_scaling"]["rows"]
    bvh_scaling = ", ".join(
        f"{int(s)//1000}k: {bvh_rows[s]['speedup']:.1f}x"
        for s in sorted(bvh_rows, key=int)
        if int(s) >= 1000
    ) or ", ".join(
        f"{s}: {bvh_rows[s]['speedup']:.1f}x" for s in sorted(bvh_rows, key=int)
    )
    print(
        f"wrote {args.output}: prm build {prm['speedup']:.2f}x "
        f"({prm['before_s']*1e3:.0f}ms -> {prm['after_s']*1e3:.0f}ms at "
        f"n={prm['n_samples']}), rrt build {rrt['speedup']:.2f}x "
        f"({rrt['before_s']*1e3:.0f}ms -> {rrt['after_s']*1e3:.0f}ms at "
        f"n={rrt['n_nodes']}), query batch {qb['speedup']:.2f}x "
        f"({qb['n_queries']} queries on {qb['n_vertices']} vertices), "
        f"fast32 kernels {kc['speedup']:.2f}x collision / "
        f"{kn['speedup']:.2f}x knn, bvh collision ({bvh_scaling}), "
        f"incremental nn phase {incnn['nn_phase_speedup']:.2f}x at "
        f"n={incnn['nn_phase_points']}, counts identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
