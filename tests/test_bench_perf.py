"""Tests for the perf regression suite (repro.bench.perf)."""

import copy
import json

import pytest

from repro.bench import perf


@pytest.fixture(scope="module")
def smoke_payload():
    """One smoke-scale suite run shared by the structural tests (the run
    itself asserts sequential/batched parity internally)."""
    return perf.run_suite("smoke")


class TestRunSuite:
    def test_structure(self, smoke_payload):
        p = smoke_payload
        assert p["suite"] == "repro-perf"
        assert p["scale"] == "smoke"
        assert set(perf._REQUIRED_FIELDS) <= set(p["benchmarks"])
        prm = p["benchmarks"]["prm_build_default_path"]
        assert prm["stats_equal"] and prm["counters_equal"] and prm["edges_equal"]
        assert prm["speedup"] > 0

    def test_payload_is_json_round_trippable(self, smoke_payload):
        assert json.loads(json.dumps(smoke_payload)) == smoke_payload

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            perf.run_suite("galactic")


class TestValidate:
    def test_accepts_suite_output(self, smoke_payload):
        assert perf.validate(smoke_payload) == []

    def test_rejects_non_object(self):
        assert perf.validate([1, 2]) != []
        assert perf.validate(None) != []

    def test_rejects_wrong_suite_marker(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["suite"] = "other"
        assert any("suite" in p for p in perf.validate(bad))

    def test_rejects_missing_benchmark(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        del bad["benchmarks"]["knn"]
        assert any("knn" in p for p in perf.validate(bad))

    def test_rejects_missing_field(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        del bad["benchmarks"]["prm_build_default_path"]["speedup"]
        assert any("speedup" in p for p in perf.validate(bad))

    def test_rejects_parity_failure(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["benchmarks"]["prm_build_default_path"]["stats_equal"] = False
        assert any("stats_equal" in p for p in perf.validate(bad))

    def test_rejects_query_parity_failure(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["benchmarks"]["query_batch"]["paths_equal"] = False
        assert any("paths_equal" in p for p in perf.validate(bad))

    def test_rejects_knn_parity_failure(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["benchmarks"]["knn_scaling"]["neighbors_equal"] = False
        assert any("neighbors_equal" in p for p in perf.validate(bad))

    def test_rejects_nonpositive_timing(self, smoke_payload):
        bad = copy.deepcopy(smoke_payload)
        bad["benchmarks"]["knn"]["before_s"] = 0
        assert any("before_s" in p for p in perf.validate(bad))


class TestCheckCli:
    def test_check_ok(self, smoke_payload, tmp_path, capsys):
        f = tmp_path / "bench.json"
        f.write_text(json.dumps(smoke_payload))
        assert perf.main(["--check", str(f)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_missing_file(self, tmp_path):
        assert perf.main(["--check", str(tmp_path / "absent.json")]) == 2

    def test_check_malformed_json(self, tmp_path):
        f = tmp_path / "bad.json"
        f.write_text("{not json")
        assert perf.main(["--check", str(f)]) == 2

    def test_check_invalid_payload(self, tmp_path):
        f = tmp_path / "bad.json"
        f.write_text(json.dumps({"suite": "other"}))
        assert perf.main(["--check", str(f)]) == 1

    def test_checked_in_baseline_validates(self):
        import pathlib

        baseline = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"
        payload = json.loads(baseline.read_text())
        assert perf.validate(payload) == []
        assert payload["benchmarks"]["prm_build_default_path"]["speedup"] >= 2.0
        assert payload["benchmarks"]["query_batch"]["speedup"] >= 5.0
        assert payload["benchmarks"]["knn_scaling"]["speedup"] > 1.0
