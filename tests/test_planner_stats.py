"""Tests for the planner work ledger and virtual-time model."""

import pytest

from repro.planners import PlannerStats, WorkModel


class TestPlannerStats:
    def test_merge_adds_fields(self):
        a = PlannerStats(sample_attempts=1, lp_checks=10, nn_distance_evals=5)
        b = PlannerStats(sample_attempts=2, lp_checks=20, nn_distance_evals=7)
        m = a.merge(b)
        assert m.sample_attempts == 3
        assert m.lp_checks == 30
        assert m.nn_distance_evals == 12

    def test_iadd(self):
        a = PlannerStats(lp_calls=1)
        a += PlannerStats(lp_calls=4)
        assert a.lp_calls == 5


class TestWorkModel:
    def test_time_of_linear(self):
        model = WorkModel(cost_sample_attempt=2.0, cost_lp_check=3.0, cost_nn_eval=0.5)
        st = PlannerStats(sample_attempts=4, lp_checks=10, nn_distance_evals=6)
        assert model.time_of(st) == pytest.approx(2.0 * 4 + 3.0 * 10 + 0.5 * 6)

    def test_fixed_cost_per_call(self):
        model = WorkModel(cost_fixed_per_call=1.5)
        st = PlannerStats(lp_calls=4)
        assert model.time_of(st) == pytest.approx(6.0)

    def test_zero_stats_zero_time(self):
        assert WorkModel().time_of(PlannerStats()) == 0.0
