"""Counters, gauges and histograms for runtime telemetry.

A :class:`MetricRegistry` is a flat namespace of named instruments.  The
simulator and drivers record steal/migration/remote-access tallies and
per-PE busy/idle time here; benches and the ``plan()`` facade read them
back through :meth:`MetricRegistry.as_dict`.

Instruments are deliberately simple (no label sets, no time windows):
every run gets a fresh registry, so values are per-run totals.
Mutations (``inc`` / ``add`` / ``observe`` and create-on-first-use) are
thread-safe: the local pools and the serving layer record from worker
threads concurrently.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


@dataclass
class Counter:
    """Monotonically increasing tally."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the tally."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        with self._lock:
            self.value += delta


@dataclass
class Histogram:
    """Streaming distribution; keeps raw observations for exact quantiles.

    Per-run observation counts here are small (one per PE or per task), so
    storing the samples beats maintaining approximate sketches.
    """

    name: str
    values: "list[float]" = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.values)

    @property
    def sum(self) -> float:
        """Exact (compensated) sum of the samples."""
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean, or 0.0 with no samples."""
        return self.sum / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        """Smallest sample, or 0.0 with no samples."""
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        """Largest sample, or 0.0 with no samples."""
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank, ``0 <= q <= 100``)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        idx = min(int(q / 100.0 * (len(ordered) - 1) + 0.5), len(ordered) - 1)
        return ordered[idx]


class MetricRegistry:
    """Flat, create-on-first-use namespace of instruments."""

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    def as_dict(self) -> "dict[str, object]":
        """Snapshot: counters/gauges as numbers, histograms as summaries."""
        out: "dict[str, object]" = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[name] = {
                "count": h.count,
                "sum": h.sum,
                "mean": h.mean,
                "min": h.min,
                "max": h.max,
            }
        return out
