"""Per-PE and machine-wide statistics collected by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PEStats", "SimResult"]


@dataclass
class PEStats:
    """One processing element's ledger for a simulated phase."""

    pe: int
    work_time: float = 0.0
    finish_time: float = 0.0
    tasks_executed: int = 0
    tasks_stolen_executed: int = 0
    steal_requests_sent: int = 0
    steal_requests_received: int = 0
    steals_serviced: int = 0
    steals_failed: int = 0
    tasks_lost: int = 0
    messages_sent: int = 0
    #: virtual time burned by failed task attempts (not useful work).
    wasted_time: float = 0.0
    #: task attempts that ended in an injected failure on this PE.
    attempts_failed: int = 0

    @property
    def tasks_local_executed(self) -> int:
        """Tasks this PE executed from its own queue (not stolen)."""
        return self.tasks_executed - self.tasks_stolen_executed


@dataclass
class SimResult:
    """Outcome of one simulated phase across the whole machine."""

    pe_stats: "list[PEStats]"
    #: task id -> PE that executed it.
    executed_by: "dict[int, int]"
    #: task id -> virtual cost charged for it.
    task_costs: "dict[int, float]"
    #: virtual time when the last task completed.
    makespan: float
    #: virtual time when the last event (incl. messages) was processed.
    end_time: float
    total_messages: int
    #: task id -> execution attempts started (absent = never started;
    #: populated only when a fault injector was attached).
    task_attempts: "dict[int, int]" = field(default_factory=dict)
    #: tasks whose retry budget ran out (sorted task ids).
    abandoned: "list[int]" = field(default_factory=list)
    #: PEs that died during the phase.
    worker_deaths: int = 0

    @property
    def retries(self) -> int:
        """Failed attempts that were rescheduled (excludes abandonment)."""
        return sum(a - 1 for a in self.task_attempts.values() if a > 1)

    @property
    def num_pes(self) -> int:
        """Number of PEs that participated in the phase."""
        return len(self.pe_stats)

    def work_times(self) -> np.ndarray:
        """Per-PE useful-work time, indexed by PE."""
        return np.array([s.work_time for s in self.pe_stats])

    def finish_times(self) -> np.ndarray:
        """Per-PE virtual finish time, indexed by PE."""
        return np.array([s.finish_time for s in self.pe_stats])

    def tasks_per_pe(self) -> np.ndarray:
        """Per-PE executed-task counts, indexed by PE."""
        return np.array([s.tasks_executed for s in self.pe_stats])

    def stolen_per_pe(self) -> np.ndarray:
        """Per-PE counts of executed tasks that were stolen."""
        return np.array([s.tasks_stolen_executed for s in self.pe_stats])

    def total_work(self) -> float:
        """Machine-wide useful work (sum of per-PE work times)."""
        return float(self.work_times().sum())

    def ideal_makespan(self) -> float:
        """Perfect balance bound: total work / P (ignores quantisation)."""
        return self.total_work() / self.num_pes

    def efficiency(self) -> float:
        """Fraction of the machine's time spent doing useful work."""
        if self.makespan == 0.0:
            return 1.0
        return self.total_work() / (self.makespan * self.num_pes)
