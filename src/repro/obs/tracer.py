"""The Tracer: structured event emission plus a metric registry.

One tracer serves both execution worlds:

* **Virtual time** — the simulator and the parallel drivers pass explicit
  ``ts`` values from the replayed machine's clock.  Nested components run
  on phase-local clocks, so a driver hands them ``tracer.offset(t0)``,
  a view of the same tracer that shifts every timestamp by ``t0``.
* **Wall clock** — when ``ts`` is omitted the tracer stamps events with
  its ``clock`` (default ``time.perf_counter`` relative to creation), and
  ``with tracer.span("connect"):`` times real code.

Instrumented code takes ``tracer: Tracer | None = None`` and guards every
emission with ``if tracer is not None`` (after normalising through
:func:`active`), so the default path adds a single predictable branch —
that is the "null tracer keeps zero overhead" contract.  The explicit
:data:`NULL_TRACER` exists for APIs that want a non-None default; it
normalises to ``None`` at instrumentation boundaries.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from .events import POINT, SPAN_BEGIN, SPAN_END, Event
from .metrics import MetricRegistry
from .sinks import MemorySink, Sink

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "active"]


class Tracer:
    """Emit typed events to one or more sinks and tally metrics.

    Parameters
    ----------
    sinks:
        Destinations for events; defaults to a single in-memory sink
        (reachable as ``tracer.memory``).
    clock:
        Zero-argument callable giving the default timestamp; defaults to
        seconds since tracer creation (``perf_counter`` based).
    metrics:
        Registry to tally into; a fresh one is created if omitted.
    """

    enabled = True

    def __init__(
        self,
        sinks: "Iterable[Sink] | None" = None,
        clock: "Callable[[], float] | None" = None,
        metrics: "MetricRegistry | None" = None,
    ):
        if sinks is None:
            self.memory: "MemorySink | None" = MemorySink()
            self.sinks: "list[Sink]" = [self.memory]
        else:
            self.sinks = list(sinks)
            self.memory = next(
                (s for s in self.sinks if isinstance(s, MemorySink)), None
            )
        if clock is None:
            t0 = time.perf_counter()
            clock = lambda: time.perf_counter() - t0  # noqa: E731
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricRegistry()

    # -- emission -----------------------------------------------------------
    def emit(
        self,
        kind: str,
        name: str,
        ts: "float | None" = None,
        pe: "int | None" = None,
        **attrs,
    ) -> Event:
        """Build an event (clock-stamped unless ``ts`` given) and fan it out."""
        event = Event(
            ts=self.clock() if ts is None else float(ts),
            kind=kind,
            name=name,
            pe=pe,
            attrs=attrs,
        )
        for sink in self.sinks:
            sink.emit(event)
        return event

    def point(
        self, name: str, ts: "float | None" = None, pe: "int | None" = None, **attrs
    ) -> Event:
        """Emit an instantaneous event."""
        return self.emit(POINT, name, ts=ts, pe=pe, **attrs)

    def begin(
        self, name: str, ts: "float | None" = None, pe: "int | None" = None, **attrs
    ) -> Event:
        """Open a span (pair with :meth:`end`)."""
        return self.emit(SPAN_BEGIN, name, ts=ts, pe=pe, **attrs)

    def end(
        self, name: str, ts: "float | None" = None, pe: "int | None" = None, **attrs
    ) -> Event:
        """Close the innermost span opened under ``name``."""
        return self.emit(SPAN_END, name, ts=ts, pe=pe, **attrs)

    def span_at(
        self, name: str, begin: float, end: float, pe: "int | None" = None, **attrs
    ) -> None:
        """Emit a completed span with explicit (virtual) endpoints."""
        if end < begin:
            raise ValueError(f"span {name!r} ends before it begins")
        self.begin(name, ts=begin, pe=pe, **attrs)
        self.end(name, ts=end, pe=pe, **attrs)

    @contextmanager
    def span(self, name: str, pe: "int | None" = None, **attrs) -> Iterator[None]:
        """Wall-clock span around a code block."""
        self.begin(name, pe=pe, **attrs)
        try:
            yield
        finally:
            self.end(name, pe=pe, **attrs)

    # -- composition --------------------------------------------------------
    def offset(self, dt: float) -> "Tracer":
        """A view of this tracer shifting every timestamp by ``dt``.

        Sinks and metrics are shared; only the clock domain changes.  Used
        to embed a component running on a phase-local clock (the simulator
        starts every phase at t=0) into the run's global timeline.
        """
        if dt == 0.0:
            return self
        return _OffsetTracer(self, dt)

    def close(self) -> None:
        """Close every attached sink."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _OffsetTracer(Tracer):
    """Shares a parent tracer's sinks/metrics, shifting timestamps."""

    def __init__(self, parent: Tracer, dt: float):
        self._parent = parent
        self._dt = float(dt)
        self.sinks = parent.sinks
        self.memory = parent.memory
        self.metrics = parent.metrics
        self.clock = lambda: parent.clock() + self._dt

    def emit(self, kind, name, ts=None, pe=None, **attrs) -> Event:
        """Shift an explicit timestamp into the parent clock and forward."""
        shifted = None if ts is None else float(ts) + self._dt
        return self._parent.emit(kind, name, ts=shifted, pe=pe, **attrs)

    def offset(self, dt: float) -> Tracer:
        """Compose offsets instead of stacking wrapper objects."""
        return self._parent.offset(self._dt + dt)

    def close(self) -> None:  # the parent owns the sinks
        """No-op: closing is the parent tracer's responsibility."""


class NullTracer(Tracer):
    """Accepts the full Tracer API and does nothing.

    Instrumented code normalises it to ``None`` via :func:`active`, so no
    per-event work happens at all on the default path.
    """

    enabled = False

    def __init__(self):
        super().__init__(sinks=[], clock=lambda: 0.0)
        self.memory = None

    def emit(self, kind, name, ts=None, pe=None, **attrs) -> Event:
        """Build the event without recording it anywhere."""
        return Event(ts=0.0, kind=kind, name=name, pe=pe, attrs=attrs)

    def offset(self, dt: float) -> "NullTracer":
        """Offsetting a null tracer is still a null tracer."""
        return self


#: Shared do-nothing tracer for APIs wanting a non-None default.
NULL_TRACER = NullTracer()


def active(tracer: "Tracer | None") -> "Tracer | None":
    """Normalise a tracer argument: disabled/null tracers become ``None``."""
    if tracer is None or not tracer.enabled:
        return None
    return tracer
