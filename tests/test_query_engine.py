"""Tests for the amortised query-serving engine (repro.planners.engine)."""

import numpy as np
import pytest

from repro.api import PlanRequest, plan
from repro.knn import BruteForceNN, GridNN, KDTreeNN
from repro.obs import EV_QUERY_END, EV_QUERY_START, Tracer, summarize_events
from repro.obs.summary import format_summary
from repro.planners import PRM, FrozenRoadmap, QueryEngine, QueryRequest, RoadmapQuery
from repro.planners.engine import _AUTO_KDTREE_MIN
from repro.runtime import Fault, FaultInjector


@pytest.fixture(scope="module")
def built():
    """One PRM roadmap shared by the parity tests (module-scoped: the
    engine never mutates it)."""
    from repro.cspace import EuclideanCSpace
    from repro.geometry import AABB, Environment

    bounds = AABB([-5.0, -5.0], [5.0, 5.0])
    obstacles = [AABB([-1.0, -1.0], [1.0, 1.0]), AABB([2.0, 2.0], [4.0, 4.0])]
    cs = EuclideanCSpace(Environment(bounds, obstacles, name="two-box"))
    rmap = PRM(cs, k=6).build(250, np.random.default_rng(0)).roadmap
    return cs, rmap


def _queries(cs, n, seed=1):
    rng = np.random.default_rng(seed)
    lo, hi = cs.bounds.lo, cs.bounds.hi
    return [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]


def _same_result(a, b):
    if a is None or b is None:
        return a is None and b is None
    return (
        a.path_vertices == b.path_vertices
        and a.length == b.length
        and np.array_equal(a.path_configs, b.path_configs)
    )


class TestSolveParity:
    """The acceptance property: every engine answer is bit-identical to
    RoadmapQuery.solve on the source roadmap."""

    def test_matches_roadmap_query(self, built):
        cs, rmap = built
        rq = RoadmapQuery(cs, k=8)
        eng = QueryEngine(cs, rmap, k=8)
        solved = 0
        for s, g in _queries(cs, 40):
            ref = rq.solve(rmap, s, g)
            got = eng.solve(s, g)
            assert _same_result(ref, got)
            solved += ref is not None
        assert solved > 0  # the battery must exercise real paths

    @pytest.mark.parametrize(
        "factory",
        [KDTreeNN, lambda dim: GridNN(dim, cell_size=1.0)],
        ids=["kdtree", "grid"],
    )
    def test_nn_backend_is_drop_in(self, built, factory):
        cs, rmap = built
        ref_eng = QueryEngine(cs, rmap, k=8, nn_factory=BruteForceNN)
        alt_eng = QueryEngine(cs, rmap, k=8, nn_factory=factory)
        for s, g in _queries(cs, 25, seed=2):
            assert _same_result(ref_eng.solve(s, g), alt_eng.solve(s, g))

    def test_invalid_endpoints_return_none(self, built):
        cs, rmap = built
        eng = QueryEngine(cs, rmap)
        # (0, 0) is inside the first obstacle.
        assert eng.solve(np.zeros(2), np.array([4.5, -4.5])) is None
        assert eng.solve(np.array([4.5, -4.5]), np.zeros(2)) is None

    def test_roadmap_never_mutated(self, built):
        cs, rmap = built
        v, e = rmap.num_vertices, rmap.num_edges
        eng = QueryEngine(cs, rmap)
        for s, g in _queries(cs, 10, seed=3):
            eng.solve(s, g)
        assert rmap.num_vertices == v and rmap.num_edges == e

    def test_accepts_prefrozen_roadmap(self, built):
        cs, rmap = built
        frozen = FrozenRoadmap.from_roadmap(rmap)
        eng = QueryEngine(cs, frozen)
        assert eng.frozen is frozen
        s, g = np.array([-4.5, -4.5]), np.array([4.5, -4.5])
        assert _same_result(eng.solve(s, g), RoadmapQuery(cs, k=8).solve(rmap, s, g))


class TestAutoBackend:
    def test_small_roadmap_uses_brute_force(self, built):
        cs, rmap = built
        assert rmap.num_vertices < _AUTO_KDTREE_MIN
        assert QueryEngine(cs, rmap).nn_factory is BruteForceNN

    def test_explicit_factory_wins(self, built):
        cs, rmap = built
        eng = QueryEngine(cs, rmap, nn_factory=KDTreeNN)
        assert eng.nn_factory is KDTreeNN
        assert isinstance(eng._nn, KDTreeNN)


class TestSolveMany:
    def test_matches_per_query_solve(self, built):
        cs, rmap = built
        eng = QueryEngine(cs, rmap, k=8)
        queries = _queries(cs, 30, seed=4)
        batch = eng.solve_many(queries)
        assert batch.num_queries == 30
        assert len(batch.latencies) == 30
        assert batch.setup_time > 0 and batch.wall_time >= batch.setup_time
        assert batch.solved == sum(r is not None for r in batch.results)
        for (s, g), got in zip(queries, batch.results):
            assert _same_result(eng.solve(s, g), got)

    def test_accepts_query_requests(self, built):
        cs, rmap = built
        eng = QueryEngine(cs, rmap)
        pairs = _queries(cs, 6, seed=5)
        as_requests = eng.solve_many([QueryRequest(s, g) for s, g in pairs])
        as_tuples = eng.solve_many(pairs)
        for a, b in zip(as_requests.results, as_tuples.results):
            assert _same_result(a, b)

    def test_empty_batch(self, built):
        cs, rmap = built
        batch = QueryEngine(cs, rmap).solve_many([])
        assert batch.results == [] and batch.solved == 0
        assert batch.queries_per_sec == 0.0
        assert batch.latency_percentile(50) == 0.0

    def test_throughput_accounting(self, built):
        cs, rmap = built
        batch = QueryEngine(cs, rmap).solve_many(_queries(cs, 10, seed=6))
        assert batch.queries_per_sec > 0
        p50, p99 = batch.latency_percentile(50), batch.latency_percentile(99)
        assert 0 < p50 <= p99 <= max(batch.latencies)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_dispatch_matches_inline(self, built, backend):
        cs, rmap = built
        eng = QueryEngine(cs, rmap, k=8)
        queries = _queries(cs, 12, seed=7)
        inline = eng.solve_many(queries)
        pooled = eng.solve_many(queries, workers=2, backend=backend)
        for a, b in zip(inline.results, pooled.results):
            assert _same_result(a, b)
        assert pooled.abandoned == [] and pooled.retries == 0

    def test_degrade_abandons_faulty_query(self, built):
        cs, rmap = built
        eng = QueryEngine(cs, rmap, k=8)
        queries = _queries(cs, 8, seed=8)
        inj = FaultInjector([Fault("raise", task=3, attempt=a) for a in range(5)])
        batch = eng.solve_many(
            queries, workers=2, failure_policy="degrade",
            max_retries=1, fault_injector=inj,
        )
        assert batch.abandoned == [3]
        assert batch.results[3] is None
        assert batch.retries >= 1
        inline = eng.solve_many(queries)
        for i, (a, b) in enumerate(zip(inline.results, batch.results)):
            if i != 3:
                assert _same_result(a, b)


class TestObservability:
    def test_events_and_serve_span(self, built):
        cs, rmap = built
        tr = Tracer()
        eng = QueryEngine(cs, rmap)
        batch = eng.solve_many(_queries(cs, 9, seed=9), tracer=tr)
        events = tr.memory.events
        starts = [e for e in events if e.name == EV_QUERY_START]
        ends = [e for e in events if e.name == EV_QUERY_END]
        assert len(starts) == len(ends) == 9
        assert sum(e.attrs["solved"] for e in ends) == batch.solved
        spans = [e for e in events if e.name == "serve"]
        assert {e.kind for e in spans} == {"span_begin", "span_end"}

    def test_summary_reports_query_serving(self, built):
        cs, rmap = built
        tr = Tracer()
        QueryEngine(cs, rmap).solve_many(_queries(cs, 9, seed=9), tracer=tr)
        s = summarize_events(tr.memory.events)
        assert s.queries_executed == 9
        assert s.queries_per_sec() > 0
        assert "Query serving" in format_summary(s)


class TestPlanReportIntegration:
    @pytest.fixture(scope="class")
    def report(self):
        return plan(PlanRequest(
            planner="prm", num_regions=8, samples_per_region=6,
            num_pes=2, seed=0,
        ))

    def test_query_engine_is_cached(self, report):
        eng = report.query_engine()
        assert report.query_engine() is eng
        assert report.query_engine(k=4) is not eng

    def test_solve_queries(self, report):
        cs = report.request.resolve_cspace()
        queries = _queries(cs, 6, seed=10)
        batch = report.solve_queries(queries)
        assert batch.num_queries == 6
        eng = report.query_engine()
        for (s, g), got in zip(queries, batch.results):
            assert _same_result(eng.solve(s, g), got)
