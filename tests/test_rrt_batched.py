"""Parity battery for the batched (predict-validate-replay) RRT growth path.

The batched path must be *field-for-field identical* to the sequential
oracle: same PlannerStats, same CollisionCounters, same tree topology
(edges with exact float weights), same parent pointers.  Every test here
runs both paths and diffs the complete observable surface.
"""

import numpy as np
import pytest
from dataclasses import asdict

from repro.core.parallel_rrt import build_rrt_workload, simulate_rrt
from repro.cspace.local_planner import StraightLinePlanner
from repro.cspace.space import EuclideanCSpace
from repro.geometry.environment import Environment
from repro.geometry.environments import med_cube, mixed_30_env
from repro.geometry.primitives import AABB
from repro.planners.roadmap import Roadmap
from repro.planners.rrt import RRT
from repro.runtime.faults import Fault, FaultInjector
from repro.subdivision.radial import ConeRegion, RadialSubdivision


def _fresh_cspace():
    env = Environment(
        AABB(np.array([-5.0, -5.0]), np.array([5.0, 5.0])),
        [
            AABB(np.array([-1.0, -1.0]), np.array([1.0, 1.0])),
            AABB(np.array([2.0, 2.0]), np.array([4.0, 4.0])),
        ],
    )
    return EuclideanCSpace(env)


def _observe(result, env):
    """The full parity surface of one grow() call."""
    edges = sorted((min(u, v), max(u, v), w) for u, v, w in result.tree.edges())
    return (
        asdict(result.stats),
        dict(result.parents),
        edges,
        result.root_id,
        (env.counters.point_checks, env.counters.segment_checks),
    )


def _grow_both(seed, n_nodes=60, step=0.5, goal_bias=0.2, grow_kwargs=None, rrt_kwargs=None):
    """Run sequential and batched growth from identical fresh state."""
    out = []
    for batched in (False, True):
        cspace = _fresh_cspace()
        rrt = RRT(cspace, step_size=step, goal_bias=goal_bias, batched=batched,
                  **(rrt_kwargs or {}))
        rng = np.random.default_rng(seed)
        result = rrt.grow(np.array([-4.0, -4.0]), n_nodes, rng, **(grow_kwargs or {}))
        out.append(_observe(result, cspace.env))
    return out


def _assert_same(seq, bat):
    for name, a, b in zip(("stats", "parents", "edges", "root_id", "counters"), seq, bat):
        assert a == b, f"batched RRT diverged from oracle in {name}"


class TestGrowParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_plain_growth(self, seed):
        _assert_same(*_grow_both(seed))

    @pytest.mark.parametrize("seed", range(6))
    def test_bias_target(self, seed):
        # Bias draws repeat the same q_rand, exercising verdict sharing
        # and dist == 0 skips once the tree reaches the bias point.
        _assert_same(*_grow_both(seed, grow_kwargs={"bias_target": np.array([4.0, 4.0])}))

    @pytest.mark.parametrize("seed", range(6))
    def test_goal_early_exit(self, seed):
        # The goal draw lands mid-block: growth must stop on the exact
        # iteration the oracle stops on, not at the block boundary.
        _assert_same(
            *_grow_both(
                seed,
                grow_kwargs={"goal": np.array([4.5, -4.5]), "goal_tolerance": 0.6},
            )
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_bias_and_goal(self, seed):
        _assert_same(
            *_grow_both(
                seed,
                grow_kwargs={
                    "bias_target": np.array([4.0, 4.0]),
                    "goal": np.array([4.5, -4.5]),
                    "goal_tolerance": 0.5,
                },
            )
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_iteration_cap_mid_block(self, seed):
        # 100 is not a multiple of the block size; the final short block
        # must stop exactly at the cap.
        _assert_same(*_grow_both(seed, n_nodes=1000, grow_kwargs={"max_iterations": 100}))

    @pytest.mark.parametrize("seed", range(4))
    def test_region_predicate_scalar_only(self, seed):
        # Without a batch predicate the batched path falls back to the
        # scalar one per candidate — still exact.
        region = ConeRegion(
            id=0, root=np.array([-4.0, -4.0]), target=np.array([4.0, 4.0]),
            half_angle=0.8, overlap=0.1, radius=8.0,
        )
        _assert_same(
            *_grow_both(seed, grow_kwargs={"region_predicate": region.contains})
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_region_predicate_batch(self, seed):
        region = ConeRegion(
            id=0, root=np.array([-4.0, -4.0]), target=np.array([4.0, 4.0]),
            half_angle=0.8, overlap=0.1, radius=8.0,
        )
        _assert_same(
            *_grow_both(
                seed,
                grow_kwargs={
                    "region_predicate": region.contains,
                    "region_predicate_batch": region.contains_many,
                },
            )
        )

    def test_medcube_3d(self):
        outs = []
        for batched in (False, True):
            env = med_cube()
            cspace = EuclideanCSpace(env)
            rrt = RRT(cspace, step_size=0.6, batched=batched)
            result = rrt.grow(np.full(3, -9.0), 300, np.random.default_rng(42))
            outs.append(_observe(result, env))
        _assert_same(*outs)

    def test_id_base_extension_mode(self):
        # Grow, then extend the returned tree under a different id_base.
        outs = []
        for batched in (False, True):
            cspace = _fresh_cspace()
            rrt = RRT(cspace, step_size=0.5, batched=batched)
            first = rrt.grow(np.array([-4.0, -4.0]), 20, np.random.default_rng(3), id_base=1 << 20)
            second = rrt.grow(
                np.array([-4.0, -4.0]),
                20,
                np.random.default_rng(4),
                tree=first.tree,
                parents=first.parents,
                root_id=first.root_id,
                id_base=2 << 20,
            )
            outs.append(_observe(second, cspace.env))
        _assert_same(*outs)


class TestEdgeCases:
    def test_region_never_extends(self):
        """A cone no extension can enter: the branch stays root-only."""
        outs = []
        for batched in (False, True):
            cspace = _fresh_cspace()
            rrt = RRT(cspace, step_size=0.5, batched=batched)
            result = rrt.grow(
                np.array([-4.0, -4.0]),
                30,
                np.random.default_rng(11),
                region_predicate=lambda q: False,
                region_predicate_batch=lambda qs: np.zeros(len(np.atleast_2d(qs)), dtype=bool),
                max_iterations=200,
            )
            assert result.tree.num_vertices == 1
            assert result.stats.samples_accepted == 0
            assert result.stats.edges_added == 0
            outs.append(_observe(result, cspace.env))
        _assert_same(*outs)

    def test_empty_tree_breaks(self):
        """Extension mode with an empty tree: one charged NN query, then
        the loop breaks — identically on both paths."""
        outs = []
        for batched in (False, True):
            cspace = _fresh_cspace()
            rrt = RRT(cspace, batched=batched)
            result = rrt.grow(
                np.array([-4.0, -4.0]),
                10,
                np.random.default_rng(5),
                tree=Roadmap(cspace.dim),
                parents={},
                root_id=0,
            )
            assert result.tree.num_vertices == 0
            assert result.stats.nn_queries == 1
            assert result.stats.nn_distance_evals == 0
            outs.append(_observe(result, cspace.env))
        _assert_same(*outs)

    def test_zero_node_request(self):
        outs = []
        for batched in (False, True):
            cspace = _fresh_cspace()
            rrt = RRT(cspace, batched=batched)
            result = rrt.grow(np.array([-4.0, -4.0]), 0, np.random.default_rng(1))
            assert result.tree.num_vertices == 1
            outs.append(_observe(result, cspace.env))
        _assert_same(*outs)

    def test_goal_bias_chain_dense(self):
        """High goal bias: long chains of repeated bias draws mid-block."""
        _assert_same(
            *_grow_both(
                9,
                goal_bias=0.8,
                grow_kwargs={"bias_target": np.array([4.5, -4.5])},
            )
        )

    def test_batched_flag_off_uses_oracle_path(self):
        cspace = _fresh_cspace()
        rrt = RRT(cspace, batched=False)
        assert rrt.batched is False
        # And on by default:
        assert RRT(_fresh_cspace()).batched is True

    def test_batched_requires_capable_local_planner(self):
        """A planner without batch_pairs_exact falls back to the oracle."""

        class MinimalLP:
            def __call__(self, cspace, a, b):
                return StraightLinePlanner(resolution=0.25)(cspace, a, b)

        cspace = _fresh_cspace()
        rrt = RRT(cspace, local_planner=MinimalLP(), batched=True)
        result = rrt.grow(np.array([-4.0, -4.0]), 15, np.random.default_rng(2))
        assert result.stats.samples_accepted == 15


class TestConeRegionVectorised:
    def test_contains_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        region = ConeRegion(
            id=0, root=np.array([0.0, 0.0, 0.0]), target=np.array([3.0, 0.0, 0.0]),
            half_angle=0.5, overlap=0.05, radius=3.0,
        )
        pts = rng.uniform(-4, 4, size=(500, 3))
        pts[0] = region.root  # zero-norm special case
        pts[1] = region.target
        mask = region.contains_many(pts)
        assert mask.dtype == bool and mask.shape == (500,)
        for i in range(500):
            assert mask[i] == region.contains(pts[i])
        assert mask[0] and mask[1]

    def test_subdivision_batch_predicate(self):
        sub = RadialSubdivision(np.zeros(2), 4.0, 6, rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        pts = rng.uniform(-5, 5, size=(200, 2))
        for rid in sub.graph.region_ids():
            scalar = sub.predicate_for(rid)
            batch = sub.predicate_batch_for(rid)
            np.testing.assert_array_equal(
                batch(pts), np.array([scalar(p) for p in pts])
            )


class TestWorkloadParity:
    @pytest.mark.parametrize("env_fn", [med_cube, mixed_30_env])
    def test_build_rrt_workload(self, env_fn):
        obs = []
        for batched in (False, True):
            env = env_fn()
            cspace = EuclideanCSpace(env)
            wl = build_rrt_workload(
                cspace, np.full(3, -9.0), 8, nodes_per_region=12, seed=7, batched=batched
            )
            edges = sorted((min(u, v), max(u, v), w) for u, v, w in wl.tree.edges())
            obs.append(
                (
                    edges,
                    {rid: asdict(b.stats) for rid, b in wl.branch_work.items()},
                    {rid: b.grow_cost for rid, b in wl.branch_work.items()},
                    dict(wl.parents),
                    (env.counters.point_checks, env.counters.segment_checks),
                )
            )
        assert obs[0] == obs[1]

    def test_simulate_parity_under_worker_crash(self):
        """A crashing worker during branch growth: the simulated run over a
        batched-built workload matches the sequential-built one exactly."""
        results = []
        for batched in (False, True):
            env = med_cube()
            cspace = EuclideanCSpace(env)
            wl = build_rrt_workload(
                cspace, np.full(3, -9.0), 8, nodes_per_region=10, seed=3, batched=batched
            )
            injector = FaultInjector([Fault("crash", worker=1, attempt=0)])
            run = simulate_rrt(wl, 4, strategy="rand-8", fault_injector=injector)
            results.append(
                (
                    run.phases.branch_growth,
                    run.phases.branch_connection,
                    run.growth_loads.tolist(),
                    run.nodes_per_pe.tolist(),
                    run.growth_sim.makespan,
                )
            )
        assert results[0] == results[1]
