"""Tests for radial (conical) subdivision."""

import numpy as np
import pytest

from repro.subdivision import RadialSubdivision


class TestRadialSubdivision:
    @pytest.fixture
    def radial(self, rng):
        return RadialSubdivision(np.zeros(3), radius=5.0, num_regions=64, k=4, rng=rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadialSubdivision(np.zeros(3), radius=0.0, num_regions=4)
        with pytest.raises(ValueError):
            RadialSubdivision(np.zeros(3), radius=1.0, num_regions=0)
        with pytest.raises(ValueError):
            RadialSubdivision(np.zeros(3), radius=1.0, num_regions=4, k=0)

    def test_targets_on_sphere(self, radial):
        d = np.linalg.norm(radial.targets - radial.root, axis=1)
        assert np.allclose(d, 5.0)

    def test_targets_angularly_sorted(self, radial):
        # Lexicographic ordering of target coordinates.
        t = radial.targets
        keys = [tuple(row) for row in t]
        assert keys == sorted(keys)

    def test_adjacency_degree_at_least_k(self, radial):
        g = radial.graph
        for rid in g.region_ids():
            assert len(g.neighbors(rid)) >= radial.k

    def test_locate_returns_nearest_cone(self, radial, rng):
        for _ in range(50):
            p = rng.normal(size=3)
            p = 3.0 * p / np.linalg.norm(p)
            rid = radial.locate(p)
            region = radial.region_of(rid)
            angle = region.angle_to(p)
            # No other region has a strictly smaller angle.
            for other in radial.graph.region_ids():
                assert angle <= radial.region_of(other).angle_to(p) + 1e-9

    def test_locate_root_is_defined(self, radial):
        assert 0 <= radial.locate(np.zeros(3)) < radial.num_regions

    def test_region_contains_respects_radius(self, radial):
        region = radial.region_of(0)
        direction = region.direction
        assert region.contains(radial.root + 2.0 * direction)
        assert not region.contains(radial.root + 10.0 * direction)

    def test_overlap_widens_cones(self, rng):
        tight = RadialSubdivision(np.zeros(2), 5.0, 16, overlap=0.0, rng=np.random.default_rng(1))
        wide = RadialSubdivision(np.zeros(2), 5.0, 16, overlap=0.5, rng=np.random.default_rng(1))
        hits_tight = 0
        hits_wide = 0
        for _ in range(200):
            p = rng.normal(size=2)
            p = 3.0 * p / np.linalg.norm(p)
            hits_tight += sum(
                tight.region_of(r).contains(p) for r in tight.graph.region_ids()
            )
            hits_wide += sum(
                wide.region_of(r).contains(p) for r in wide.graph.region_ids()
            )
        assert hits_wide > hits_tight

    def test_single_region(self):
        radial = RadialSubdivision(np.zeros(2), 1.0, 1, rng=np.random.default_rng(0))
        assert radial.num_regions == 1
        assert radial.graph.num_adjacencies == 0

    def test_predicate_for_matches_contains(self, radial, rng):
        pred = radial.predicate_for(3)
        region = radial.region_of(3)
        for _ in range(20):
            p = rng.normal(size=3)
            assert pred(p) == region.contains(p)

    def test_deterministic_given_rng(self):
        a = RadialSubdivision(np.zeros(3), 5.0, 32, rng=np.random.default_rng(7))
        b = RadialSubdivision(np.zeros(3), 5.0, 32, rng=np.random.default_rng(7))
        assert np.allclose(a.targets, b.targets)
