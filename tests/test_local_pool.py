"""Tests for the true-parallel local execution backend."""

import time

import pytest

from repro.runtime import run_tasks_parallel


def _square(task_id):
    return task_id * task_id


class TestRunTasksParallel:
    def test_all_results_present(self):
        res = run_tasks_parallel(_square, list(range(20)), workers=4)
        assert res.results == {i: i * i for i in range(20)}
        assert set(res.per_task_time) == set(range(20))

    def test_single_worker(self):
        res = run_tasks_parallel(_square, [1, 2, 3], workers=1)
        assert res.results == {1: 1, 2: 4, 3: 9}

    def test_empty_task_list(self):
        res = run_tasks_parallel(_square, [], workers=2)
        assert res.results == {}
        assert res.slowest_task() is None

    def test_window_bounds_inflight(self):
        res = run_tasks_parallel(_square, list(range(50)), workers=2, window=3)
        assert len(res.results) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=0)
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], backend="gpu")

    def test_threads_give_wall_clock_overlap(self):
        def sleepy(task_id):
            time.sleep(0.05)
            return task_id

        res = run_tasks_parallel(sleepy, list(range(8)), workers=8)
        # 8 x 50ms serial would be 400ms; parallel should be well under.
        assert res.wall_time < 0.3

    def test_slowest_task_identified(self):
        def variable(task_id):
            time.sleep(0.01 * (task_id == 3))
            return task_id

        res = run_tasks_parallel(variable, list(range(5)), workers=2)
        task, duration = res.slowest_task()
        assert task in range(5)
        assert duration == max(res.per_task_time.values())

    def test_tracer_sees_every_task(self):
        from repro.obs import Tracer, summarize_events

        tr = Tracer()
        res = run_tasks_parallel(_square, list(range(12)), workers=3, tracer=tr)
        summary = summarize_events(tr.memory.events)
        assert summary.tasks_executed == len(res.results) == 12
        assert tr.metrics.histogram("task_time").count == 12
        assert tr.metrics.counter("pool_tasks").value == 12


class TestBackendsAndChunking:
    def test_thread_and_process_agree(self):
        tasks = list(range(12))
        rt = run_tasks_parallel(_square, tasks, workers=2, backend="thread")
        rp = run_tasks_parallel(_square, tasks, workers=2, backend="process")
        assert rt.results == rp.results == {t: t * t for t in tasks}
        assert set(rp.per_task_time) == set(tasks)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_chunksize_preserves_results(self, backend):
        tasks = list(range(10))
        res = run_tasks_parallel(_square, tasks, workers=2, backend=backend, chunksize=4)
        assert res.results == {t: t * t for t in tasks}
        assert set(res.per_task_time) == set(tasks)

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=1, chunksize=0)
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=1, backend="greenlet")

    def test_tracer_sees_every_task_with_chunks(self):
        from repro.obs import Tracer, summarize_events

        tr = Tracer()
        res = run_tasks_parallel(
            _square, list(range(9)), workers=2, chunksize=2, tracer=tr
        )
        summary = summarize_events(tr.memory.events)
        assert summary.tasks_executed == len(res.results) == 9
        assert tr.metrics.histogram("task_time").count == 9
        assert tr.metrics.counter("pool_tasks").value == 9
