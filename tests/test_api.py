"""Tests for the plan() facade (repro.api) and the unified result protocol."""

import pytest

from repro import JsonlSink, MemorySink, PlanRequest, Tracer, plan, read_jsonl
from repro.core import (
    PhaseBreakdown,
    PlannerRunResult,
    build_prm_workload,
    build_rrt_workload,
    phases_dict,
    simulate_prm,
    simulate_rrt,
)
from repro.obs import summarize_events


class TestPlanRequestValidation:
    def test_defaults_valid(self):
        PlanRequest().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"planner": "astar"},
            {"execution": "cloud"},
            {"strategy": "telepathy"},
            {"num_regions": 0},
            {"num_pes": 0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            PlanRequest(**kwargs).validate()

    def test_unknown_partitioner_fails_at_plan_time(self):
        req = PlanRequest(num_regions=32, num_pes=4, partitioner="magic")
        with pytest.raises(ValueError, match="partitioner"):
            plan(req)


class TestPlanParity:
    """plan() must be a pure facade: same seed => identical results to the
    legacy build_*_workload + simulate_* chain."""

    def test_prm_matches_legacy_chain(self):
        req = PlanRequest(
            environment="med-cube",
            planner="prm",
            num_regions=64,
            samples_per_region=4,
            strategy="hybrid",
            num_pes=8,
            seed=3,
        )
        report = plan(req)

        workload = build_prm_workload(
            req.resolve_cspace(),
            num_regions=64,
            samples_per_region=4,
            seed=3,
        )
        legacy = simulate_prm(workload, 8, "hybrid")

        assert report.roadmap.num_vertices == workload.roadmap.num_vertices
        assert report.roadmap.num_edges == workload.roadmap.num_edges
        assert report.total_time == pytest.approx(legacy.total_time)
        assert phases_dict(report.phases) == pytest.approx(phases_dict(legacy.phases))

    def test_rrt_matches_legacy_chain(self):
        req = PlanRequest(
            environment="med-cube",
            planner="rrt",
            num_regions=24,
            nodes_per_region=6,
            strategy="rand-8",
            num_pes=8,
            seed=5,
        )
        report = plan(req)

        from repro.api import _default_root

        cspace = req.resolve_cspace()
        workload = build_rrt_workload(
            cspace, _default_root(cspace, 5), num_regions=24, nodes_per_region=6, seed=5
        )
        legacy = simulate_rrt(workload, 8, "rand-8")

        assert report.roadmap.num_vertices == workload.roadmap.num_vertices
        assert report.total_time == pytest.approx(legacy.total_time)
        assert phases_dict(report.phases) == pytest.approx(phases_dict(legacy.phases))

    def test_partitioner_changes_distribution(self):
        base = dict(num_regions=64, samples_per_region=4, strategy="none",
                    num_pes=8, seed=3)
        block = plan(PlanRequest(partitioner="block", **base))
        greedy = plan(PlanRequest(partitioner="greedy", **base))
        # Same measured workload either way...
        assert block.roadmap.num_vertices == greedy.roadmap.num_vertices
        # ...but a different region->PE distribution actually took effect.
        assert [p.work_time for p in greedy.sim.pe_stats] != [
            p.work_time for p in block.sim.pe_stats
        ]


class TestPlanTracing:
    def test_trace_reconstructs_result_exactly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[MemorySink(), JsonlSink(path)])
        report = plan(
            PlanRequest(
                num_regions=64,
                samples_per_region=4,
                strategy="rand-8",
                num_pes=8,
                seed=3,
                tracer=tracer,
            )
        )
        tracer.close()

        summary = summarize_events(read_jsonl(path))
        # Phase spans reproduce the PhaseTimes fields exactly (Fig. 7a).
        assert summary.phases == pytest.approx(phases_dict(report.phases))
        # Steal protocol counts reproduce the SimResult totals (Fig. 9).
        sim = report.sim
        assert summary.steal_requests == sum(p.steal_requests_sent for p in sim.pe_stats)
        assert summary.steal_transfers == sum(p.steals_serviced for p in sim.pe_stats)
        assert summary.tasks_migrated == sum(p.tasks_lost for p in sim.pe_stats)
        assert summary.tasks_executed == sum(p.tasks_executed for p in sim.pe_stats)
        # Disk and memory sinks saw the same stream.
        assert summary == report.trace_summary()

    def test_traced_and_untraced_agree(self):
        base = dict(num_regions=64, samples_per_region=4, strategy="hybrid",
                    num_pes=8, seed=3)
        plain = plan(PlanRequest(**base))
        traced = plan(PlanRequest(tracer=Tracer(), **base))
        assert plain.total_time == pytest.approx(traced.total_time)

    def test_metrics_property(self):
        tracer = Tracer()
        report = plan(
            PlanRequest(num_regions=32, samples_per_region=4, strategy="rand-8",
                        num_pes=8, seed=1, tracer=tracer)
        )
        metrics = report.metrics
        assert metrics is not None
        assert metrics["steals_attempted"] == sum(
            p.steal_requests_sent for p in report.sim.pe_stats
        )
        assert plan(PlanRequest(num_regions=8, num_pes=2)).metrics is None

    def test_summary_renders(self):
        tracer = Tracer()
        report = plan(
            PlanRequest(num_regions=32, samples_per_region=4, strategy="rand-8",
                        num_pes=8, seed=1, tracer=tracer)
        )
        text = report.summary()
        assert "PRM / rand-8 on 8 PEs" in text
        assert "construct" in text


class TestLocalExecution:
    def test_prm_local(self):
        report = plan(
            PlanRequest(planner="prm", num_regions=8, samples_per_region=4,
                        execution="local", workers=2, seed=2)
        )
        assert report.pool is not None and report.result is None
        assert len(report.pool.results) == 8
        assert report.roadmap.num_vertices > 0
        assert report.total_time == report.pool.wall_time
        assert report.phases is None and report.sim is None

    def test_rrt_local(self):
        report = plan(
            PlanRequest(planner="rrt", num_regions=6, nodes_per_region=4,
                        execution="local", workers=2, seed=2)
        )
        assert report.pool is not None
        assert report.roadmap.num_vertices > 0
        assert "slowest region" in report.summary()

    def test_local_with_tracer(self):
        tracer = Tracer()
        report = plan(
            PlanRequest(num_regions=6, samples_per_region=4, execution="local",
                        workers=2, seed=2, tracer=tracer)
        )
        summary = report.trace_summary()
        assert summary.tasks_executed == len(report.pool.results)


class TestResultProtocols:
    def test_run_results_satisfy_protocols(self):
        prm = plan(PlanRequest(num_regions=32, samples_per_region=4,
                               strategy="hybrid", num_pes=4, seed=1))
        rrt = plan(PlanRequest(planner="rrt", num_regions=12, nodes_per_region=4,
                               strategy="none", num_pes=4, seed=1))
        for report in (prm, rrt):
            assert isinstance(report.result, PlannerRunResult)
            assert isinstance(report.phases, PhaseBreakdown)
            pd = phases_dict(report.phases)
            assert sum(pd.values()) == pytest.approx(report.phases.total)
            assert report.result.sim is not None
            assert report.result.loads is not None
            assert report.result.total_time == report.total_time

    def test_phase_vocabulary_is_shared(self):
        prm = plan(PlanRequest(num_regions=32, samples_per_region=4, num_pes=4))
        rrt = plan(PlanRequest(planner="rrt", num_regions=12, nodes_per_region=4,
                               num_pes=4))
        prm_names = [name for name, _ in prm.phases.phase_items()]
        rrt_names = [name for name, _ in rrt.phases.phase_items()]
        # RRT has no generate phase; otherwise the vocabulary is identical.
        assert [n for n in prm_names if n != "generate"] == rrt_names


class TestDeterminismAndChunking:
    def test_seeded_local_runs_identical(self):
        """Two plan() calls with the same seed must build statistically
        identical roadmaps — the reproducibility contract the benchmark
        suite and the paper's figures both rely on."""
        def run():
            report = plan(
                PlanRequest(planner="prm", num_regions=8, samples_per_region=5,
                            execution="local", workers=2, seed=7)
            )
            rm = report.roadmap
            ids, cfgs = rm.configs_array()
            edges = sorted((min(u, v), max(u, v), w) for u, v, w in rm.edges())
            return list(ids), cfgs.tolist(), edges

        assert run() == run()

    def test_chunksize_wired_through(self):
        base = plan(
            PlanRequest(num_regions=8, samples_per_region=4, execution="local",
                        workers=2, seed=3)
        )
        chunked = plan(
            PlanRequest(num_regions=8, samples_per_region=4, execution="local",
                        workers=2, seed=3, chunksize=3)
        )
        assert len(chunked.pool.results) == len(base.pool.results) == 8
        assert chunked.roadmap.num_vertices == base.roadmap.num_vertices

    def test_chunksize_validated(self):
        with pytest.raises(ValueError):
            PlanRequest(chunksize=0).validate()
