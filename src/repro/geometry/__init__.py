"""Workspace geometry: primitives, environments, and collision checking."""

from .bvh import BVH
from .environment import CollisionCounters, Environment
from .environments import (
    by_name,
    cluttered_env,
    cube_env,
    free_env,
    med_cube,
    mixed_30_env,
    mixed_env,
    model_2d,
    small_cube,
    walls_env,
)
from .primitives import AABB, Sphere, aabb_from_points, aabb_union
from .scenarios import (
    available_scenarios,
    city_grid,
    cluttered_spheres,
    fingerprint,
    scenario_by_name,
    shelf_warehouse,
)
from .transforms import (
    angular_difference,
    rot2d,
    rot3d_euler,
    transform_points_se2,
    transform_points_se3,
    wrap_angle,
)

__all__ = [
    "AABB",
    "BVH",
    "Sphere",
    "aabb_from_points",
    "aabb_union",
    "CollisionCounters",
    "Environment",
    "available_scenarios",
    "city_grid",
    "cluttered_spheres",
    "fingerprint",
    "scenario_by_name",
    "shelf_warehouse",
    "by_name",
    "cluttered_env",
    "cube_env",
    "free_env",
    "med_cube",
    "mixed_30_env",
    "mixed_env",
    "model_2d",
    "small_cube",
    "walls_env",
    "angular_difference",
    "rot2d",
    "rot3d_euler",
    "transform_points_se2",
    "transform_points_se3",
    "wrap_angle",
]
