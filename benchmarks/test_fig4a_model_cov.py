"""Fig. 4(a): coefficient of variation in the model environment."""

from repro.bench import fig4a_model_cov


def test_fig4a_model_cov(once):
    points = once(fig4a_model_cov)
    # The greedy partition is never worse than naive, per the model ...
    for p in points:
        assert p.model_best <= p.model_imbalance + 1e-9
    # ... and the experimental sampling run tracks the model's naive CoV.
    for p in points:
        if p.num_pes >= 8:
            assert abs(p.experimental_imbalance - p.model_imbalance) < 0.15
    # Rebalancing headroom shrinks as the work per PE gets coarse.
    assert points[-1].model_best >= points[0].model_best
