"""Region-graph partitioners and partition-quality metrics."""

from .edge_cut import PartitionQuality, edge_cut_of, evaluate_partition, loads_of
from .greedy import partition_greedy_lpt, partition_weighted_blocks
from .naive import partition_1d_columns, partition_block
from .refine import refine_partition
from .spatial import partition_rcb

__all__ = [
    "PartitionQuality",
    "edge_cut_of",
    "evaluate_partition",
    "loads_of",
    "partition_greedy_lpt",
    "partition_weighted_blocks",
    "partition_1d_columns",
    "partition_block",
    "refine_partition",
    "partition_rcb",
]
