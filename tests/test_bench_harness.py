"""Smoke tests for the benchmark harness (small scales)."""

import numpy as np

from repro.bench import format_table, prm_scaling_table, rrt_scaling_table
from repro.core import build_prm_workload, build_rrt_workload
from repro.cspace import EuclideanCSpace
from repro.geometry import med_cube, free_env


def test_prm_scaling_table_rows():
    cs = EuclideanCSpace(med_cube())
    wl = build_prm_workload(cs, num_regions=100, samples_per_region=4, seed=1)
    rows = prm_scaling_table(wl, [4, 8], strategies=("none", "repartition"))
    assert len(rows) == 4
    assert rows[0].strategy == "none"
    assert rows[0].speedup_vs_none == 1.0
    assert all(r.total_time > 0 for r in rows)


def test_rrt_scaling_table_rows():
    cs = EuclideanCSpace(free_env())
    wl = build_rrt_workload(cs, np.zeros(3), num_regions=64, nodes_per_region=4, seed=1)
    rows = rrt_scaling_table(wl, [4], strategies=("none", "diffusive"))
    assert len(rows) == 2
    assert rows[1].strategy == "diffusive"


def test_format_table_alignment():
    out = format_table(["a", "bbb"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)
