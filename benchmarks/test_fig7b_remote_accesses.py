"""Fig. 7(b): remote accesses in region connection."""

from repro.bench import fig7b_remote_accesses


def test_fig7b_remote_accesses(once):
    out = once(fig7b_remote_accesses)
    by = {o["strategy"]: o for o in out}
    # Repartitioning raises remote accesses into both pGraphs (edge cut).
    assert by["repartition"]["region_graph"] > by["none"]["region_graph"]
    assert by["repartition"]["roadmap_graph"] > by["none"]["roadmap_graph"]
    # The roadmap graph sees far more traffic than the region graph.
    for o in out:
        assert o["roadmap_graph"] > o["region_graph"]
