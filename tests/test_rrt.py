"""Tests for the sequential RRT planner."""

import numpy as np
import pytest

from repro.planners import RRT


class TestRRTGrow:
    def test_grows_tree(self, box_cspace, rng):
        res = RRT(box_cspace, step_size=0.5).grow(np.array([-4.0, -4.0]), 100, rng)
        assert res.tree.num_vertices > 50
        # A tree has exactly V-1 edges.
        assert res.tree.num_edges == res.tree.num_vertices - 1

    def test_invalid_root_rejected(self, box_cspace, rng):
        with pytest.raises(ValueError):
            RRT(box_cspace).grow(np.array([0.0, 0.0]), 10, rng)  # inside obstacle

    def test_parents_form_tree_to_root(self, box_cspace, rng):
        res = RRT(box_cspace, step_size=0.5).grow(np.array([-4.0, -4.0]), 60, rng)
        for vid in res.tree.vertices():
            path = res.path_to_root(vid)
            assert path[-1] == res.root_id
            assert len(path) <= res.tree.num_vertices

    def test_step_size_respected(self, box_cspace, rng):
        step = 0.4
        res = RRT(box_cspace, step_size=step).grow(np.array([-4.0, -4.0]), 80, rng)
        for _u, _v, w in res.tree.edges():
            assert w <= step + 1e-9

    def test_all_nodes_valid(self, box_cspace, rng):
        res = RRT(box_cspace, step_size=0.5).grow(np.array([-4.0, -4.0]), 80, rng)
        _ids, cfgs = res.tree.configs_array()
        assert box_cspace.valid(cfgs).all()

    def test_region_predicate_constrains_growth(self, box_cspace, rng):
        root = np.array([-4.0, -4.0])
        predicate = lambda q: q[0] <= -2.0  # stay on the left
        res = RRT(box_cspace, step_size=0.5).grow(
            root, 60, rng, region_predicate=predicate
        )
        _ids, cfgs = res.tree.configs_array()
        assert (cfgs[:, 0] <= -2.0 + 1e-9).all()

    def test_goal_early_exit(self, box_cspace, rng):
        root = np.array([-4.0, -4.0])
        goal = np.array([-3.0, -3.0])
        res = RRT(box_cspace, step_size=0.5, goal_bias=0.3).grow(
            root, 500, rng, goal=goal, goal_tolerance=0.5
        )
        _ids, cfgs = res.tree.configs_array()
        dists = np.linalg.norm(cfgs - goal, axis=1)
        assert dists.min() <= 0.5

    def test_bias_target_pulls_growth(self, box_cspace):
        root = np.array([-4.0, -4.0])
        target = np.array([4.0, -4.0])
        biased = RRT(box_cspace, step_size=0.5, goal_bias=0.6).grow(
            root, 60, np.random.default_rng(1), bias_target=target
        )
        _ids, cfgs = biased.tree.configs_array()
        assert cfgs[:, 0].max() > 0.0  # reached the right half

    def test_extension_validation(self, box_cspace, rng):
        with pytest.raises(ValueError):
            RRT(box_cspace, step_size=0.0)
        with pytest.raises(ValueError):
            RRT(box_cspace, goal_bias=1.5)
        tree_res = RRT(box_cspace).grow(np.array([-4.0, -4.0]), 10, rng)
        with pytest.raises(ValueError):
            RRT(box_cspace).grow(
                np.array([-4.0, -4.0]), 10, rng, tree=tree_res.tree
            )

    def test_deterministic_given_seed(self, box_cspace):
        r1 = RRT(box_cspace, step_size=0.5).grow(
            np.array([-4.0, -4.0]), 50, np.random.default_rng(3)
        )
        r2 = RRT(box_cspace, step_size=0.5).grow(
            np.array([-4.0, -4.0]), 50, np.random.default_rng(3)
        )
        assert r1.tree.num_vertices == r2.tree.num_vertices
        _i1, c1 = r1.tree.configs_array()
        _i2, c2 = r2.tree.configs_array()
        assert np.allclose(c1, c2)

    def test_max_iterations_caps_work(self, box_cspace, rng):
        # Demand far more nodes than iterations allow.
        res = RRT(box_cspace, step_size=0.3).grow(
            np.array([-4.0, -4.0]), 10_000, rng, max_iterations=50
        )
        assert res.tree.num_vertices <= 51
