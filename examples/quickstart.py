#!/usr/bin/env python
"""Quickstart: build a roadmap, answer a motion-planning query, then run
the same problem through the load-balanced parallel PRM on a simulated
768-core machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import build_prm_workload, simulate_prm
from repro.cspace import EuclideanCSpace
from repro.geometry import med_cube
from repro.planners import PRM, RoadmapQuery


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. Sequential planning: PRM + query in the paper's med-cube world.
    # ------------------------------------------------------------------
    env = med_cube()
    print(f"Environment: {env}")
    cspace = EuclideanCSpace(env)

    planner = PRM(cspace, k=6)
    result = planner.build(600, rng)
    print(f"Sequential PRM: {result.roadmap} "
          f"({result.stats.lp_calls} local plans, "
          f"{result.stats.sample_attempts} sample attempts)")

    start = np.array([-9.0, -9.0, -9.0])
    goal = np.array([9.0, 9.0, 9.0])
    query = RoadmapQuery(cspace).solve(result.roadmap, start, goal)
    if query is None:
        print("Query failed — try more samples.")
    else:
        print(f"Query solved: {len(query.path_vertices)} waypoints, "
              f"length {query.length:.1f}")

    # ------------------------------------------------------------------
    # 2. Parallel planning: uniform subdivision + load balancing on a
    #    simulated cluster (virtual time from real planner work).
    # ------------------------------------------------------------------
    print("\nBuilding the regional workload (real planning, done once)...")
    workload = build_prm_workload(cspace, num_regions=1500, samples_per_region=6, seed=1)
    print(f"  {workload.num_regions} regions, {workload.roadmap.num_vertices} roadmap nodes")

    rows = []
    for strategy in ("none", "repartition", "hybrid", "rand-8"):
        run = simulate_prm(workload, 768, strategy)
        rows.append(
            [
                strategy,
                f"{run.total_time:.0f}",
                f"{run.phases.node_connection:.0f}",
                f"{run.phases.region_connection:.0f}",
                f"{rows[0][1] if rows else run.total_time}",
            ]
        )
    base = float(rows[0][1])
    for row in rows:
        row[-1] = f"{base / float(row[1]):.2f}x"
    print("\nParallel PRM on a simulated 768-core machine:")
    print(format_table(["strategy", "virtual time", "node conn", "region conn", "speedup"], rows))


if __name__ == "__main__":
    main()
