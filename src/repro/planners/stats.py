"""Work accounting shared by the sequential planners.

The simulated distributed runtime charges virtual time per unit of planner
work.  :class:`PlannerStats` is the ledger: every sampler attempt, local
plan resolution step and NN distance evaluation a sequential planner
performs inside a region is recorded here and later converted to virtual
seconds by :class:`WorkModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PlannerStats", "WorkModel"]


@dataclass
class PlannerStats:
    """Operation counts for one (regional) planner invocation."""

    sample_attempts: int = 0
    samples_accepted: int = 0
    nn_queries: int = 0
    nn_distance_evals: int = 0
    lp_calls: int = 0
    lp_checks: int = 0
    lp_successes: int = 0
    edges_added: int = 0
    #: NN-structure maintenance (nonzero only with the ``incremental``
    #: backend): rung merge-rebuilds, queries answered from the brute
    #: buffer, and distance evaluations saved versus a flat scan.
    nn_rebuilds: int = 0
    nn_buffer_hits: int = 0
    nn_evals_saved: int = 0

    def merge(self, other: "PlannerStats") -> "PlannerStats":
        return PlannerStats(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def __iadd__(self, other: "PlannerStats") -> "PlannerStats":
        merged = self.merge(other)
        self.__dict__.update(merged.__dict__)
        return self


@dataclass(frozen=True)
class WorkModel:
    """Converts operation counts into virtual time.

    Coefficients are per-operation costs in abstract seconds.  Defaults
    reflect the paper's observation that local planning (edge validation)
    dominates: an LP resolution step costs the same as a validity check of
    one sample attempt, and NN distance evaluations are an order of
    magnitude cheaper.
    """

    cost_sample_attempt: float = 1.0
    cost_lp_check: float = 1.0
    cost_nn_eval: float = 0.1
    cost_fixed_per_call: float = 0.0

    def time_of(self, stats: PlannerStats) -> float:
        return (
            self.cost_sample_attempt * stats.sample_attempts
            + self.cost_lp_check * stats.lp_checks
            + self.cost_nn_eval * stats.nn_distance_evals
            + self.cost_fixed_per_call * stats.lp_calls
        )
