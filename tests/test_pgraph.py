"""Tests for the distributed-graph view and remote-access accounting."""

import pytest

from repro.runtime import ClusterTopology, PGraphView


@pytest.fixture
def view():
    topo = ClusterTopology(4, cores_per_node=2, latency_local=1.0, latency_remote=10.0)
    v = PGraphView("roadmap graph", topo)
    v.set_owners({0: 0, 1: 1, 2: 2, 3: 3})
    return v


class TestOwnership:
    def test_owner_and_elements(self, view):
        assert view.owner(2) == 2
        assert view.elements_of(1) == [1]
        assert view.num_elements == 4

    def test_invalid_owner_rejected(self, view):
        with pytest.raises(ValueError):
            view.set_owner(9, 7)

    def test_migrate(self, view):
        view.migrate(0, 3)
        assert view.owner(0) == 3
        with pytest.raises(KeyError):
            view.migrate(77, 0)


class TestAccessAccounting:
    def test_local_access_free(self, view):
        charged = view.access(0, 0)
        assert charged == 0.0
        assert view.stats.local == 1
        assert view.stats.remote == 0

    def test_remote_access_charged(self, view):
        charged = view.access(0, 1)  # same node (cores_per_node=2)
        assert charged == pytest.approx(1.0)
        charged = view.access(0, 2)  # cross node
        assert charged == pytest.approx(10.0)
        assert view.stats.remote == 2
        assert view.stats.remote_by_pe[0] == 2

    def test_counted_per_element(self, view):
        view.access(0, 2, count=5)
        assert view.stats.remote == 5
        assert view.stats.latency_charged == pytest.approx(50.0)

    def test_bulk_access_single_latency(self, view):
        charged = view.access_bulk(0, 2, count=100)
        # One message: base remote latency + bandwidth * payload.
        assert charged == pytest.approx(10.0 + 100 * view.topology.bandwidth_cost)
        assert view.stats.remote == 100

    def test_bulk_zero_count_free(self, view):
        assert view.access_bulk(0, 2, count=0) == 0.0
        assert view.stats.total == 0

    def test_negative_count_rejected(self, view):
        with pytest.raises(ValueError):
            view.access(0, 1, count=-1)

    def test_remote_fraction(self, view):
        view.access(0, 0)
        view.access(0, 1)
        assert view.stats.remote_fraction() == pytest.approx(0.5)

    def test_reset(self, view):
        view.access(0, 1)
        view.reset_stats()
        assert view.stats.total == 0
