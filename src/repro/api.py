"""repro.api — one entry point over the whole planning pipeline.

The repo's primitives are deliberately separable (build a workload once,
replay it under many strategies), but most callers want the whole chain:
environment → subdivision → regional planning → weights/repartition →
simulated machine or local pool.  :func:`plan` composes it:

    >>> from repro import PlanRequest, plan
    >>> report = plan(PlanRequest(environment="med-cube", planner="prm",
    ...                           num_regions=512, strategy="hybrid",
    ...                           num_pes=96, seed=1))
    >>> report.total_time, report.sim.efficiency()

Every knob rides on the request — the steal policy, the initial
partitioner, the machine topology, and a :class:`repro.obs.Tracer` that
records the run as a structured trace.  The legacy entry points
(``build_prm_workload`` / ``simulate_prm`` and the RRT pair) remain the
underlying building blocks and keep working unchanged; ``plan()`` is the
facade over them.

``execution="simulate"`` (default) replays the measured workload on a
virtual machine of ``num_pes`` PEs.  ``execution="local"`` instead runs
the regional planners truly in parallel on this machine's cores via
:func:`repro.runtime.run_tasks_parallel` and reports wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from .core.parallel_prm import (
    ID_SHIFT,
    PRMRunResult,
    PRMWorkload,
    _positional_bounds,
    _region_sample_box,
    build_prm_workload,
    simulate_prm,
)
from .core.parallel_rrt import (
    RRTRunResult,
    RRTWorkload,
    _lift_position,
    build_rrt_workload,
    simulate_rrt,
)
from .cspace.space import ConfigurationSpace, EuclideanCSpace
from .geometry import environments
from .obs.summary import TraceSummary, format_summary, summarize_events
from .obs.tracer import active
from .planners.engine import BatchQueryResult, QueryEngine
from .planners.prm import PRM
from .planners.roadmap import Roadmap
from .planners.rrt import RRT
from .runtime.faults import FaultInjector
from .runtime.local_pool import FAILURE_POLICIES, PoolResult, run_tasks_parallel
from .subdivision.radial import RadialSubdivision
from .subdivision.uniform import UniformSubdivision

if TYPE_CHECKING:
    from .obs.tracer import Tracer
    from .runtime.stats import SimResult
    from .runtime.topology import ClusterTopology

__all__ = ["PlanRequest", "PlanReport", "plan"]

_PLANNERS = ("prm", "rrt")
_EXECUTIONS = ("simulate", "local")
_STRATEGIES = ("none", "repartition", "rand-8", "rand-k", "diffusive", "hybrid")


@dataclass
class PlanRequest:
    """Everything :func:`plan` needs, in one declarative record."""

    #: benchmark environment name (see ``repro.geometry.environments``) or
    #: an Environment instance.
    environment: "str | object" = "med-cube"
    planner: str = "prm"
    num_regions: int = 256
    #: PRM per-region sample budget (the paper's N / Nr).
    samples_per_region: int = 8
    #: RRT per-branch node budget.
    nodes_per_region: int = 12
    #: load-balancing strategy: "none", "repartition", "rand-8",
    #: "diffusive" or "hybrid".
    strategy: str = "none"
    #: initial region->PE distribution: "block" (paper's naive mapping),
    #: "greedy" or "rcb".
    partitioner: str = "block"
    num_pes: int = 16
    seed: int = 0
    topology: "ClusterTopology | None" = None
    steal_chunk: "str | int" = "half"
    #: observability hook; None (default) records nothing.
    tracer: "Tracer | None" = None
    #: "simulate" replays on the virtual machine; "local" runs the
    #: regional planners on this machine's cores for real wall-clock.
    execution: str = "simulate"
    #: local-execution pool size, backend, and tasks per submission
    #: (chunksize > 1 amortises dispatch overhead for tiny regions).
    workers: int = 4
    backend: str = "thread"
    chunksize: int = 1
    #: failure handling: "fail_fast" (default), "retry" (bounded retries
    #: with backoff), or "degrade" (abandon exhausted regions and return
    #: a partial roadmap).  Applies to both execution modes — local runs
    #: honour the policy exactly; the simulator always degrades (it
    #: studies failure, it does not die of it).
    failure_policy: str = "fail_fast"
    max_retries: int = 2
    #: local execution only: seconds allowed per region before the
    #: attempt counts as failed (None disables timeouts).
    task_timeout: "float | None" = None
    #: deterministic chaos plan (see ``repro.runtime.faults``); None
    #: (default) injects nothing and costs nothing.
    fault_injector: "FaultInjector | None" = None
    #: extra keyword arguments forwarded to ``build_*_workload``.
    workload_options: "dict" = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range or unknown field."""
        if self.planner not in _PLANNERS:
            raise ValueError(f"planner must be one of {_PLANNERS}, got {self.planner!r}")
        if self.execution not in _EXECUTIONS:
            raise ValueError(
                f"execution must be one of {_EXECUTIONS}, got {self.execution!r}"
            )
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if self.num_pes < 1:
            raise ValueError("num_pes must be >= 1")
        if self.chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")

    def resolve_cspace(self) -> ConfigurationSpace:
        """Materialise the configuration space (looking the environment up
        by catalog name when given as a string)."""
        env = self.environment
        if isinstance(env, str):
            env = environments.by_name(env)
        return EuclideanCSpace(env)


@dataclass
class PlanReport:
    """What came back: the workload, the machine result, and accessors
    that read the same regardless of planner or execution mode."""

    request: PlanRequest
    #: measured workload (simulate mode; None for local execution).
    workload: "PRMWorkload | RRTWorkload | None"
    #: simulated run (None for local execution).
    result: "PRMRunResult | RRTRunResult | None"
    #: local pool accounting (None for simulate mode).
    pool: "PoolResult | None"
    #: merged roadmap / tree across regions.
    roadmap: Roadmap

    @property
    def phases(self):
        """Per-phase breakdown (PhaseBreakdown protocol); simulate only."""
        return self.result.phases if self.result is not None else None

    @property
    def sim(self) -> "SimResult | None":
        """Simulator output of the load-balanced phase; simulate only."""
        return self.result.sim if self.result is not None else None

    @property
    def total_time(self) -> float:
        """Virtual seconds (simulate) or wall seconds (local)."""
        if self.result is not None:
            return self.result.total_time
        return self.pool.wall_time if self.pool is not None else 0.0

    @property
    def retries(self) -> int:
        """Failed attempts that were rescheduled, either execution mode."""
        if self.pool is not None:
            return self.pool.retries
        return self.sim.retries if self.sim is not None else 0

    @property
    def abandoned_regions(self) -> "list[int]":
        """Regions given up on under the ``"degrade"`` policy (sorted)."""
        if self.pool is not None:
            return list(self.pool.abandoned)
        return list(self.sim.abandoned) if self.sim is not None else []

    @property
    def worker_deaths(self) -> int:
        """Workers (local pool) or PEs (simulator) that died during the run."""
        if self.pool is not None:
            return self.pool.worker_deaths
        return self.sim.worker_deaths if self.sim is not None else 0

    @property
    def metrics(self) -> "dict[str, object] | None":
        """Snapshot of the tracer's metric registry, if one was attached."""
        tr = active(self.request.tracer)
        return tr.metrics.as_dict() if tr is not None else None

    def query_engine(
        self, k: int = 8, nn_factory=None, local_planner=None
    ) -> QueryEngine:
        """A query-serving engine over this report's roadmap.

        The engine freezes the roadmap into a CSR snapshot and builds one
        reusable NN index, amortising all per-query setup; see
        :class:`repro.planners.engine.QueryEngine`.  The engine built for
        one argument combination is cached, so repeated calls (and
        :meth:`solve_queries`) reuse the same snapshot and index.
        """
        key = (k, nn_factory, local_planner)
        cached = getattr(self, "_engine_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        engine = QueryEngine(
            self.request.resolve_cspace(),
            self.roadmap,
            local_planner=local_planner,
            k=k,
            nn_factory=nn_factory,
        )
        self._engine_cache = (key, engine)
        return engine

    def solve_queries(self, requests, **kwargs) -> BatchQueryResult:
        """Solve a batch of ``(start, goal)`` queries against the built
        roadmap via the cached :meth:`query_engine`.

        Keyword arguments pass through to
        :meth:`repro.planners.engine.QueryEngine.solve_many` (``workers``,
        ``backend``, ``failure_policy``, ...); the request's tracer is
        attached by default so query events land in the same trace as the
        build.
        """
        kwargs.setdefault("tracer", self.request.tracer)
        return self.query_engine().solve_many(requests, **kwargs)

    def trace_summary(self) -> "TraceSummary | None":
        """Aggregate the attached tracer's in-memory trace, if any."""
        tr = active(self.request.tracer)
        if tr is None or tr.memory is None:
            return None
        return summarize_events(tr.memory.events)

    def summary(self) -> str:
        """Human-readable report of the run."""
        lines = [
            f"{self.request.planner.upper()} / {self.request.strategy} "
            f"on {self.request.num_pes} PEs ({self.request.execution})",
            f"roadmap: {self.roadmap.num_vertices} vertices, "
            f"{self.roadmap.num_edges} edges",
            f"total time: {self.total_time:.2f}",
        ]
        if self.pool is not None:
            slowest = self.pool.slowest_task()
            if slowest is not None:
                lines.append(
                    f"slowest region: #{slowest[0]} at {slowest[1]:.3f}s "
                    f"across {self.pool.workers} workers"
                )
        if self.retries or self.abandoned_regions or self.worker_deaths:
            lines.append(
                f"failures: {self.retries} retries, "
                f"{len(self.abandoned_regions)} abandoned regions, "
                f"{self.worker_deaths} worker deaths"
            )
        ts = self.trace_summary()
        if ts is not None:
            lines += ["", format_summary(ts)]
        return "\n".join(lines)


def plan(request: PlanRequest) -> PlanReport:
    """Run the full pipeline described by ``request``."""
    request.validate()
    cspace = request.resolve_cspace()
    if request.execution == "local":
        return _plan_local(request, cspace)
    if request.planner == "prm":
        workload = build_prm_workload(
            cspace,
            num_regions=request.num_regions,
            samples_per_region=request.samples_per_region,
            seed=request.seed,
            **request.workload_options,
        )
        result = simulate_prm(
            workload,
            request.num_pes,
            request.strategy,
            topology=request.topology,
            steal_chunk=request.steal_chunk,
            tracer=request.tracer,
            initial_partitioner=request.partitioner,
            fault_injector=request.fault_injector,
            max_retries=request.max_retries,
        )
    else:
        root = _default_root(cspace, request.seed)
        workload = build_rrt_workload(
            cspace,
            root,
            num_regions=request.num_regions,
            nodes_per_region=request.nodes_per_region,
            seed=request.seed,
            **request.workload_options,
        )
        result = simulate_rrt(
            workload,
            request.num_pes,
            request.strategy,
            topology=request.topology,
            steal_chunk=request.steal_chunk,
            tracer=request.tracer,
            initial_partitioner=request.partitioner,
            fault_injector=request.fault_injector,
            max_retries=request.max_retries,
        )
    return PlanReport(
        request=request,
        workload=workload,
        result=result,
        pool=None,
        roadmap=workload.roadmap,
    )


def _default_root(cspace: ConfigurationSpace, seed: int) -> np.ndarray:
    """A valid RRT root: the bounds centre if free, else a valid sample.

    Sampling starts near the centre and widens to the full bounds — some
    environments (e.g. med-cube) block the entire central region.
    """
    lo, hi = cspace.bounds.lo, cspace.bounds.hi
    mid = (lo + hi) / 2.0
    root = mid.copy()
    rng = np.random.default_rng(seed)
    for attempt in range(10_000):
        if cspace.valid_single(root):
            return root
        scale = 0.3 if attempt < 64 else 1.0
        root = rng.uniform(mid + scale * (lo - mid), mid + scale * (hi - mid))
    raise ValueError("no valid RRT root found; environment looks fully blocked")


# ---------------------------------------------------------------------------
# Local (true-parallel) execution
# ---------------------------------------------------------------------------
# Module-level tasks bound with functools.partial so the "process" backend
# can pickle them; the default "thread" backend works either way.

def _prm_region_task(
    cspace: ConfigurationSpace,
    subdivision: UniformSubdivision,
    samples_per_region: int,
    seed: int,
    rid: int,
) -> Roadmap:
    region = subdivision.region_of(rid)
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(rid,)))
    planner = PRM(cspace, connect_same_component=False)
    within = _region_sample_box(cspace, region.sample_bounds)
    result = planner.build(
        samples_per_region, rng, within=within, id_base=rid << ID_SHIFT
    )
    return result.roadmap


def _rrt_region_task(
    cspace: ConfigurationSpace,
    radial: RadialSubdivision,
    root: np.ndarray,
    nodes_per_region: int,
    seed: int,
    rid: int,
) -> Roadmap:
    region = radial.region_of(rid)
    pos_dims = list(cspace.positional_dims)
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(rid,)))
    planner = RRT(cspace)
    result = planner.grow(
        root,
        nodes_per_region,
        rng,
        bias_target=_lift_position(cspace, region.target, root),
        region_predicate=lambda q, region=region, dims=pos_dims: region.contains(
            np.asarray(q)[dims]
        ),
        max_iterations=40 * nodes_per_region,
        id_base=rid << ID_SHIFT,
        region_predicate_batch=lambda qs, region=region, dims=pos_dims: region.contains_many(
            np.atleast_2d(np.asarray(qs))[:, dims]
        ),
    )
    return result.tree


def _plan_local(request: PlanRequest, cspace: ConfigurationSpace) -> PlanReport:
    """Run the regional planners for real on the local machine's cores.

    The pool's greedy dynamic dispatch is the shared-memory analogue of
    work stealing, so the ``strategy`` field is irrelevant here; regions
    are the unit of work exactly as on the simulated machine.
    """
    if request.planner == "prm":
        subdivision = UniformSubdivision(
            _positional_bounds(cspace), request.num_regions, overlap=0.2
        )
        task = partial(
            _prm_region_task, cspace, subdivision, request.samples_per_region, request.seed
        )
        region_ids = subdivision.graph.region_ids()
    else:
        root = _default_root(cspace, request.seed)
        pos_dims = list(cspace.positional_dims)
        root_pos = root[pos_dims]
        radius = float(
            min(
                np.min(root_pos - cspace.bounds.lo[pos_dims]),
                np.min(cspace.bounds.hi[pos_dims] - root_pos),
            )
        )
        radial = RadialSubdivision(
            root_pos,
            radius,
            request.num_regions,
            rng=np.random.default_rng(request.seed),
        )
        task = partial(
            _rrt_region_task, cspace, radial, root, request.nodes_per_region, request.seed
        )
        region_ids = radial.graph.region_ids()

    pool = run_tasks_parallel(
        task,
        region_ids,
        workers=request.workers,
        backend=request.backend,
        chunksize=request.chunksize,
        tracer=request.tracer,
        failure_policy=request.failure_policy,
        max_retries=request.max_retries,
        task_timeout=request.task_timeout,
        fault_injector=request.fault_injector,
        retry_seed=request.seed,
    )
    # Under "degrade" abandoned regions are simply absent from the merge:
    # regional roadmaps are independent subproblems, so the survivors
    # stitch into a valid (if sparser) roadmap.
    merged = Roadmap(cspace.dim)
    for rid in sorted(pool.results):
        merged.merge(pool.results[rid])
    return PlanReport(
        request=request, workload=None, result=None, pool=pool, roadmap=merged
    )
